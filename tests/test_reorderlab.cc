/**
 * @file
 * Tests for reorderlab — the persist-ordering adversary: the
 * hardware-enforced ordering edges between concurrently pending
 * persists, the journal-backed PendingCursor, order-ideal enumeration
 * (exhaustive and sampled), torn-line variants, image application,
 * and the end-to-end interaction with the salvaging recovery scanner
 * (a log record torn mid-line by the adversary must quarantine its
 * transaction, invariants I7/I8).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "crashlab/reorder.hh"
#include "mem/backing_store.hh"
#include "mem/mem_device.hh"
#include "mem/write_combine_buffer.hh"
#include "persist/log_record.hh"
#include "persist/log_region.hh"
#include "persist/recovery.hh"

using namespace snf;
using namespace snf::crashlab;
using namespace snf::persist;

namespace
{

PendingPersist
pend(std::uint32_t seq, Tick issue, Tick done, Addr addr,
     std::uint32_t size, PersistOrigin origin)
{
    PendingPersist p;
    p.seq = seq;
    p.issue = issue;
    p.done = done;
    p.addr = addr;
    p.size = size;
    p.origin = origin;
    p.data.assign(size, static_cast<std::uint8_t>(0xa0 + seq));
    return p;
}

/** Every plan member's enforced predecessors must also be members. */
void
expectDownwardClosed(const std::vector<PendingPersist> &pending,
                     const std::vector<ReorderImage> &plans)
{
    for (const ReorderImage &plan : plans) {
        std::set<std::uint32_t> members(plan.applied.begin(),
                                        plan.applied.end());
        std::vector<std::uint32_t> all(plan.applied);
        if (plan.tornIndex >= 0)
            all.push_back(static_cast<std::uint32_t>(plan.tornIndex));
        for (std::uint32_t j : all) {
            for (std::uint32_t i = 0; i < j; ++i) {
                if (!reorderEdge(pending[i], pending[j]))
                    continue;
                EXPECT_TRUE(members.count(i))
                    << "ideal drops enforced predecessor #" << i
                    << " of #" << j;
            }
        }
    }
}

} // namespace

// ------------------------- ordering edges ------------------------

TEST(ReorderEdge, NonDataWritesShareTheSerializedChannel)
{
    auto a = pend(0, 0, 10, 0x1000, 8, PersistOrigin::LogDrain);
    auto b = pend(1, 2, 12, 0x9000, 8, PersistOrigin::WcbFlush);
    auto c = pend(2, 4, 14, 0x5000, 32, PersistOrigin::Meta);
    // Pairwise ordered regardless of address distance.
    EXPECT_TRUE(reorderEdge(a, b));
    EXPECT_TRUE(reorderEdge(b, c));
    EXPECT_TRUE(reorderEdge(a, c));
}

TEST(ReorderEdge, OverlappingRangesAreOrdered)
{
    auto log = pend(0, 0, 10, 0x1000, 32, PersistOrigin::LogDrain);
    auto data = pend(1, 2, 12, 0x1010, 64, PersistOrigin::Data);
    EXPECT_TRUE(reorderEdge(log, data));
    // Adjacent but disjoint: no overlap, no edge.
    auto after = pend(2, 2, 14, 0x1020, 64, PersistOrigin::Data);
    EXPECT_FALSE(reorderEdge(log, after));
}

TEST(ReorderEdge, DisjointDataIsUnordered)
{
    auto log = pend(0, 0, 10, 0x1000, 8, PersistOrigin::LogDrain);
    auto data = pend(1, 2, 12, 0x20000, 64, PersistOrigin::Data);
    auto data2 = pend(2, 3, 13, 0x30000, 64, PersistOrigin::Data);
    EXPECT_FALSE(reorderEdge(log, data));
    EXPECT_FALSE(reorderEdge(data, data2));
}

// ------------------------- pending cursor ------------------------

TEST(PendingCursor, JournalWindowsDefineThePendingSet)
{
    mem::BackingStore store(0, 1 << 16);
    store.enableJournal();
    std::uint64_t v = 1;
    // Pending over [2, 10): a log drain.
    store.write(0x100, 8, &v, 10, 2, PersistOrigin::LogDrain);
    // Pending over [5, 20): a data write-back.
    store.write(0x200, 8, &v, 20, 5, PersistOrigin::Data);
    // issue == done: accepted instantly, never pending.
    store.write(0x300, 8, &v, 7, 7, PersistOrigin::Data);
    // Functional write (no ticks): never pending.
    store.write(0x400, 8, &v);

    PendingCursor cursor(store);
    EXPECT_TRUE(cursor.pendingAt(1).empty());
    auto at2 = cursor.pendingAt(2);
    ASSERT_EQ(at2.size(), 1u);
    EXPECT_EQ(at2[0].addr, 0x100u);
    EXPECT_EQ(at2[0].origin, PersistOrigin::LogDrain);

    auto at5 = cursor.pendingAt(5);
    ASSERT_EQ(at5.size(), 2u);
    // Canonical order: completion tick, then journal order.
    EXPECT_EQ(at5[0].addr, 0x100u);
    EXPECT_EQ(at5[1].addr, 0x200u);

    auto at10 = cursor.pendingAt(10);
    ASSERT_EQ(at10.size(), 1u);
    EXPECT_EQ(at10[0].addr, 0x200u);

    EXPECT_EQ(cursor.pendingAt(19).size(), 1u);
    EXPECT_TRUE(cursor.pendingAt(20).empty());
}

TEST(PendingCursor, OneShotHelperMatchesCursor)
{
    mem::BackingStore store(0, 1 << 16);
    store.enableJournal();
    std::uint64_t v = 7;
    store.write(0x100, 8, &v, 30, 4, PersistOrigin::WcbFlush);
    auto pending = pendingPersistsAt(store, 10);
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].origin, PersistOrigin::WcbFlush);
    EXPECT_EQ(pending[0].data.size(), 8u);
    EXPECT_EQ(std::memcmp(pending[0].data.data(), &v, 8), 0);
}

// ---------------------- order-ideal planning ---------------------

TEST(PlanReorder, ExhaustiveIndependentSetEnumeratesAllSubsets)
{
    // Three unordered entries: every non-empty subset is an ideal.
    std::vector<PendingPersist> pending{
        pend(0, 0, 10, 0x10000, 64, PersistOrigin::Data),
        pend(1, 1, 11, 0x20000, 64, PersistOrigin::Data),
        pend(2, 2, 12, 0x30000, 64, PersistOrigin::Data),
    };
    ReorderConfig cfg;
    cfg.enabled = true;
    cfg.tornLines = false;
    auto plans = planReorderImages(pending, cfg, 100);
    EXPECT_EQ(plans.size(), 7u);
    expectDownwardClosed(pending, plans);
    std::set<std::vector<std::uint32_t>> unique;
    for (const auto &p : plans)
        EXPECT_TRUE(unique.insert(p.applied).second)
            << "duplicate ideal emitted";
}

TEST(PlanReorder, SerializedChainYieldsOnlyPrefixes)
{
    // Three log-channel writes: totally ordered, so the only ideals
    // are the three canonical prefixes.
    std::vector<PendingPersist> pending{
        pend(0, 0, 10, 0x1000, 32, PersistOrigin::LogDrain),
        pend(1, 1, 11, 0x1020, 32, PersistOrigin::LogDrain),
        pend(2, 2, 12, 0x1040, 32, PersistOrigin::LogDrain),
    };
    ReorderConfig cfg;
    cfg.enabled = true;
    cfg.tornLines = false;
    auto plans = planReorderImages(pending, cfg, 100);
    ASSERT_EQ(plans.size(), 3u);
    for (const auto &p : plans) {
        for (std::size_t i = 0; i < p.applied.size(); ++i)
            EXPECT_EQ(p.applied[i], i) << "non-prefix ideal of a "
                                          "totally ordered chain";
    }
}

TEST(PlanReorder, SampledModeStaysDownwardClosedAndDeduped)
{
    // 10 entries exceed the exhaustive bound: seeded sampling. Mix a
    // serialized log chain with free data lines.
    std::vector<PendingPersist> pending;
    for (std::uint32_t i = 0; i < 4; ++i)
        pending.push_back(pend(i, i, 20 + i, 0x1000 + i * 32, 32,
                               PersistOrigin::LogDrain));
    for (std::uint32_t i = 4; i < 10; ++i)
        pending.push_back(pend(i, i, 20 + i, 0x10000 + i * 0x1000,
                               64, PersistOrigin::Data));
    ReorderConfig cfg;
    cfg.enabled = true;
    cfg.exhaustiveBound = 6;
    cfg.samples = 40;
    cfg.tornLines = false;
    auto plans = planReorderImages(pending, cfg, 555);
    ASSERT_FALSE(plans.empty());
    EXPECT_LE(plans.size(), cfg.samples);
    expectDownwardClosed(pending, plans);
    std::set<std::vector<std::uint32_t>> unique;
    for (const auto &p : plans)
        EXPECT_TRUE(unique.insert(p.applied).second);
    // Same seed and tick: deterministic plans.
    auto again = planReorderImages(pending, cfg, 555);
    ASSERT_EQ(plans.size(), again.size());
    for (std::size_t i = 0; i < plans.size(); ++i)
        EXPECT_EQ(plans[i].applied, again[i].applied);
}

TEST(PlanReorder, TornVariantsTearTheMaximalElement)
{
    std::vector<PendingPersist> pending{
        pend(0, 0, 10, 0x10000, 64, PersistOrigin::Data),
    };
    ReorderConfig cfg;
    cfg.enabled = true;
    auto plans = planReorderImages(pending, cfg, 9);
    // One full ideal plus 64/8 - 1 = 7 torn variants.
    ASSERT_EQ(plans.size(), 8u);
    std::size_t torn = 0;
    for (const auto &p : plans) {
        if (p.tornIndex < 0)
            continue;
        ++torn;
        EXPECT_EQ(p.tornIndex, 0);
        EXPECT_TRUE(p.applied.empty());
        EXPECT_EQ(p.tornBytes % 8, 0u);
        EXPECT_GT(p.tornBytes, 0u);
        EXPECT_LT(p.tornBytes, 64u);
    }
    EXPECT_EQ(torn, 7u);
    expectDownwardClosed(pending, plans);
}

TEST(PlanReorder, ImageCapIsRespected)
{
    std::vector<PendingPersist> pending;
    for (std::uint32_t i = 0; i < 6; ++i)
        pending.push_back(pend(i, i, 20 + i, 0x10000 + i * 0x1000,
                               64, PersistOrigin::Data));
    ReorderConfig cfg;
    cfg.enabled = true;
    cfg.maxImagesPerPoint = 10;
    auto plans = planReorderImages(pending, cfg, 1);
    EXPECT_LE(plans.size(), 10u);
}

TEST(ApplyReorder, WritesAppliedEntriesAndTornPrefix)
{
    mem::BackingStore image(0, 1 << 16);
    std::vector<PendingPersist> pending{
        pend(0, 0, 10, 0x100, 8, PersistOrigin::Data),
        pend(1, 1, 11, 0x200, 16, PersistOrigin::Data),
    };
    ReorderImage plan;
    plan.applied = {0};
    plan.tornIndex = 1;
    plan.tornBytes = 8;
    applyReorderImage(image, pending, plan);
    std::uint8_t buf[16];
    image.read(0x100, 8, buf);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(buf[i], 0xa0);
    image.read(0x200, 16, buf);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(buf[i], 0xa1) << "torn prefix byte " << i;
    for (int i = 8; i < 16; ++i)
        EXPECT_EQ(buf[i], 0x00) << "byte past the tear leaked";
}

// ------------------ WCB drop probes (crash model) ----------------

TEST(WcbDrop, DropAllEmitsOneProbePerEntry)
{
    MemDeviceConfig devCfg;
    devCfg.sizeBytes = 1 << 20;
    mem::MemDevice dev("nvram-test", devCfg, 0);
    mem::WriteCombineBuffer wcb(dev, 4, 64);

    std::vector<Addr> dropped;
    wcb.setProbe([&](sim::ProbeEvent e, Tick, std::uint64_t arg) {
        if (e == sim::ProbeEvent::WcbDrop)
            dropped.push_back(arg);
    });
    std::uint64_t v = 5;
    wcb.append(0x1000, 8, &v, 0);
    wcb.append(0x1008, 8, &v, 0); // coalesces into the same line
    wcb.append(0x2000, 8, &v, 0);
    ASSERT_EQ(wcb.occupancy(), 2u);
    wcb.dropAll();
    EXPECT_EQ(wcb.occupancy(), 0u);
    ASSERT_EQ(dropped.size(), 2u);
    EXPECT_EQ(dropped[0], 0x1000u);
    EXPECT_EQ(dropped[1], 0x2000u);
}

// ------------- torn log records meet salvaging recovery ----------

namespace
{

/** Minimal in-image log for fabricating crash states (same layout
 *  the salvaging scanner reads; mirrors faultlab's fixture). */
struct LogFixture
{
    AddressMap map;
    mem::BackingStore image;
    std::uint64_t tail = 0;

    LogFixture() : map(makeMap()), image(map.nvramBase, 1 << 22)
    {
        std::uint64_t magic = LogRegion::kMagic;
        std::uint64_t slots = (map.logSize - LogRegion::kHeaderBytes) /
                              LogRecord::kSlotBytes;
        image.write(map.logBase(), 8, &magic);
        image.write(map.logBase() + 8, 8, &slots);
    }

    static AddressMap
    makeMap()
    {
        AddressMap m;
        m.nvramSize = 1 << 22;
        m.logSize = 4096;
        return m;
    }

    Addr
    append(const LogRecord &rec)
    {
        std::uint8_t img[LogRecord::kSlotBytes];
        rec.serialize(img, true);
        Addr a = map.logBase() + LogRegion::kHeaderBytes +
                 tail * LogRecord::kSlotBytes;
        image.write(a, sizeof(img), img);
        ++tail;
        return a;
    }

    Addr data(std::uint64_t i) const { return map.heapBase() + i * 8; }
};

} // namespace

TEST(TornRecordRecovery, AdversaryTornUpdateRecordIsQuarantined)
{
    // The adversary tears a v2 CRC-protected update record mid-line:
    // its log-drain write is the pending persist, and the torn-line
    // variant lands only a prefix of the 32-byte slot. Salvaging
    // recovery must classify the slot as damaged and quarantine the
    // committed transaction (I7: no garbage replay), for every legal
    // tear offset.
    for (std::uint32_t tornBytes : {8u, 16u, 24u}) {
        LogFixture f;
        std::uint64_t init = 1;
        f.image.write(f.data(0), 8, &init);
        f.image.write(f.data(1), 8, &init);

        // tx 10's first update record is the torn victim: reserve its
        // slot but keep it empty (the drain never fully landed).
        LogRecord victim =
            LogRecord::update(0, 10, f.data(0), 8, 1, 50);
        Addr victimAddr = f.append(LogRecord::update(0, 0, 0, 8, 0, 0));
        std::uint8_t empty[LogRecord::kSlotBytes] = {};
        f.image.write(victimAddr, sizeof(empty), empty);
        f.append(LogRecord::update(0, 10, f.data(1), 8, 1, 60));
        f.append(LogRecord::commit(0, 10, 2));

        // The pending persist: the victim slot's log-drain write,
        // torn by the adversary at tornBytes.
        PendingPersist p =
            pend(0, 0, 10, victimAddr, LogRecord::kSlotBytes,
                 PersistOrigin::LogDrain);
        victim.serialize(p.data.data(), true);

        ReorderConfig cfg;
        cfg.enabled = true;
        auto plans = planReorderImages({p}, cfg, 1);
        auto it = std::find_if(
            plans.begin(), plans.end(), [&](const ReorderImage &pl) {
                return pl.tornIndex == 0 && pl.tornBytes == tornBytes;
            });
        ASSERT_NE(it, plans.end());
        applyReorderImage(f.image, {p}, *it);

        auto report = Recovery::run(f.image, f.map);
        EXPECT_EQ(report.committedTxns, 1u) << "torn at " << tornBytes;
        EXPECT_EQ(report.quarantinedTxns, 1u)
            << "torn at " << tornBytes;
        ASSERT_EQ(report.quarantinedTxIds.size(), 1u);
        EXPECT_EQ(report.quarantinedTxIds[0], 10);
        // I7: neither redo value of the quarantined txn replays.
        EXPECT_EQ(f.image.read64(f.data(0)), 1u);
        EXPECT_EQ(f.image.read64(f.data(1)), 1u);
    }
}

TEST(TornRecordRecovery, SalvageOfTornImageIsIdempotent)
{
    // I8: the salvaging pass over the adversary's torn image is
    // idempotent — recovering the recovered image changes nothing.
    LogFixture f;
    std::uint64_t init = 3;
    f.image.write(f.data(0), 8, &init);
    LogRecord victim = LogRecord::update(0, 4, f.data(0), 8, 3, 90);
    Addr victimAddr = f.append(LogRecord::update(0, 0, 0, 8, 0, 0));
    std::uint8_t empty[LogRecord::kSlotBytes] = {};
    f.image.write(victimAddr, sizeof(empty), empty);
    f.append(LogRecord::commit(0, 4, 1));

    PendingPersist p = pend(0, 0, 10, victimAddr,
                            LogRecord::kSlotBytes,
                            PersistOrigin::LogDrain);
    victim.serialize(p.data.data(), true);
    ReorderImage torn;
    torn.tornIndex = 0;
    torn.tornBytes = 16;
    applyReorderImage(f.image, {p}, torn);

    RecoveryOptions noTrunc;
    noTrunc.truncateLog = false;
    mem::BackingStore once = f.image;
    Recovery::run(once, f.map, noTrunc);
    mem::BackingStore twice = once;
    Recovery::run(twice, f.map, noTrunc);
    EXPECT_FALSE(
        once.firstDifference(twice, f.map.nvramBase, 1 << 22))
        << "salvage of a torn image is not idempotent";
}
