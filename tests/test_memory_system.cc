/**
 * @file
 * Unit tests for the memory-system protocol layer: hierarchy fills,
 * write-allocate, coherence between private L1s, clwb, the FWB scan
 * state machine, eviction write-backs, and the persistent-store hook.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"

using namespace snf;
using namespace snf::mem;

namespace
{

SystemConfig
cfg4()
{
    return SystemConfig::scaled(4);
}

struct RecordingHook : PersistentStoreHook
{
    struct Event
    {
        CoreId core;
        std::uint64_t txSeq;
        Addr addr;
        std::uint64_t oldVal;
        std::uint64_t newVal;
    };

    std::vector<Event> events;

    Tick
    onPersistentStore(CoreId core, std::uint64_t txSeq, Addr addr,
                      std::uint32_t, std::uint64_t oldVal,
                      std::uint64_t newVal, Tick now) override
    {
        events.push_back({core, txSeq, addr, oldVal, newVal});
        return now;
    }
};

} // namespace

class MemorySystemTest : public ::testing::Test
{
  protected:
    MemorySystemTest() : ms(cfg4()), nv(ms.config().map.nvramBase) {}

    MemorySystem ms;
    Addr nv; ///< first NVRAM address (log base; fine for raw tests)
};

TEST_F(MemorySystemTest, StoreThenLoadRoundTrip)
{
    std::uint64_t v = 0xabcdef;
    ms.store(0, nv + 8, 8, &v, 0);
    std::uint64_t out = 0;
    auto r = ms.load(0, nv + 8, 8, &out, 100);
    EXPECT_EQ(out, v);
    EXPECT_EQ(r.level, HitLevel::L1);
}

TEST_F(MemorySystemTest, FirstAccessMissesToMemory)
{
    std::uint64_t out = 0;
    auto r = ms.load(0, nv + 4096, 8, &out, 0);
    EXPECT_EQ(r.level, HitLevel::Memory);
    EXPECT_GT(r.done, 200u); // paid the NVRAM conflict read
}

TEST_F(MemorySystemTest, SecondCoreHitsInL2)
{
    std::uint64_t v = 5;
    ms.store(0, nv + 4096, 8, &v, 0);
    // Evict nothing; core 1 misses L1 but the line sits in L2.
    std::uint64_t out = 0;
    // Write-back of core 0's dirty copy happens via cache-to-cache.
    auto r = ms.load(1, nv + 4096, 8, &out, 1000);
    EXPECT_EQ(out, 5u);
    EXPECT_EQ(r.level, HitLevel::L2);
}

TEST_F(MemorySystemTest, DirtyCopyMigratesBetweenCores)
{
    std::uint64_t v = 7;
    ms.store(0, nv + 8192, 8, &v, 0);
    std::uint64_t out = 0;
    ms.load(1, nv + 8192, 8, &out, 100);
    EXPECT_EQ(out, 7u);
    // Now core 1 stores: core 0's copy must be invalidated.
    std::uint64_t v2 = 9;
    ms.store(1, nv + 8192, 8, &v2, 200);
    ms.load(0, nv + 8192, 8, &out, 300);
    EXPECT_EQ(out, 9u);
}

TEST_F(MemorySystemTest, StoreExclusivityNoTwoDirtyCopies)
{
    std::uint64_t v = 1;
    ms.store(0, nv + 256, 8, &v, 0);
    v = 2;
    ms.store(1, nv + 256, 8, &v, 100);
    v = 3;
    ms.store(0, nv + 256, 8, &v, 200); // would assert on 2 dirty
    std::uint64_t out = 0;
    ms.load(3, nv + 256, 8, &out, 300);
    EXPECT_EQ(out, 3u);
}

TEST_F(MemorySystemTest, ClwbPersistsDirtyLine)
{
    std::uint64_t v = 0x77;
    Addr a = nv + 16384;
    ms.store(0, a, 8, &v, 0);
    EXPECT_TRUE(ms.isLineDirtyAnywhere(a));
    Tick done = ms.clwb(0, a, 100);
    EXPECT_GT(done, 100u);
    EXPECT_FALSE(ms.isLineDirtyAnywhere(a));
    // The device now has the data.
    std::uint64_t out = 0;
    ms.nvram().functionalRead(a, 8, &out);
    EXPECT_EQ(out, 0x77u);
}

TEST_F(MemorySystemTest, ClwbKeepsLineValid)
{
    std::uint64_t v = 3;
    Addr a = nv + 16384;
    ms.store(0, a, 8, &v, 0);
    ms.clwb(0, a, 100);
    std::uint64_t out = 0;
    auto r = ms.load(0, a, 8, &out, 200);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(out, 3u);
}

TEST_F(MemorySystemTest, ClwbOnCleanLineIsCheap)
{
    std::uint64_t out = 0;
    Addr a = nv + 32768;
    ms.load(0, a, 8, &out, 0);
    Tick done = ms.clwb(0, a, 1000);
    EXPECT_LT(done, 1100u); // no device write needed
}

TEST_F(MemorySystemTest, FwbScanFlagsThenWritesBack)
{
    std::uint64_t v = 0x1234;
    Addr a = nv + 65536;
    ms.store(0, a, 8, &v, 0);

    auto s1 = ms.fwbScanAll(1000, 0.0);
    EXPECT_GE(s1.linesFlagged, 1u);
    EXPECT_TRUE(ms.isLineDirtyAnywhere(a)); // only flagged so far

    auto s2 = ms.fwbScanAll(2000, 0.0);
    EXPECT_GE(s2.linesWrittenBack, 1u);
    // After L1 FWB the line is dirty in L2; two more scans push it
    // to NVRAM.
    ms.fwbScanAll(3000, 0.0);
    ms.fwbScanAll(4000, 0.0);
    EXPECT_FALSE(ms.isLineDirtyAnywhere(a));
    std::uint64_t out = 0;
    ms.nvram().functionalRead(a, 8, &out);
    EXPECT_EQ(out, 0x1234u);
}

TEST_F(MemorySystemTest, FwbIgnoresDramLines)
{
    std::uint64_t v = 9;
    Addr d = ms.config().map.dramBase + 4096;
    ms.store(0, d, 8, &v, 0);
    for (int i = 0; i < 4; ++i)
        ms.fwbScanAll(1000 * (i + 1), 0.0);
    // DRAM line is still dirty: FWB only guards NVRAM data.
    EXPECT_TRUE(ms.isLineDirtyAnywhere(d));
}

TEST_F(MemorySystemTest, FwbScanChargesPortBusyTime)
{
    ms.fwbScanAll(100, 1.0);
    EXPECT_GT(ms.l1(0).busyUntil, 100u);
    EXPECT_GT(ms.l2Cache().busyUntil, 100u);
}

TEST_F(MemorySystemTest, WriteAllocatePreservesNeighbours)
{
    // Preload the full line in NVRAM, store one word, check the
    // neighbouring bytes survived the write-allocate.
    Addr line = nv + 131072;
    std::uint64_t a = 0x1111, b = 0x2222;
    ms.nvram().functionalWrite(line, 8, &a);
    ms.nvram().functionalWrite(line + 8, 8, &b);
    std::uint64_t v = 0x3333;
    ms.store(0, line, 8, &v, 0);
    std::uint64_t out = 0;
    ms.load(0, line + 8, 8, &out, 100);
    EXPECT_EQ(out, 0x2222u);
}

TEST_F(MemorySystemTest, HookSeesOldAndNewValues)
{
    RecordingHook hook;
    ms.setStoreHook(&hook);
    Addr a = nv + 262144;
    std::uint64_t init = 10;
    ms.nvram().functionalWrite(a, 8, &init);

    MemorySystem::StoreCtx ctx;
    ctx.persistent = true;
    ctx.txSeq = 77;
    std::uint64_t v = 20;
    ms.store(2, a, 8, &v, 0, ctx);

    ASSERT_EQ(hook.events.size(), 1u);
    EXPECT_EQ(hook.events[0].core, 2u);
    EXPECT_EQ(hook.events[0].txSeq, 77u);
    EXPECT_EQ(hook.events[0].oldVal, 10u);
    EXPECT_EQ(hook.events[0].newVal, 20u);
}

TEST_F(MemorySystemTest, HookSkipsNonPersistentAndDram)
{
    RecordingHook hook;
    ms.setStoreHook(&hook);
    std::uint64_t v = 1;
    ms.store(0, nv + 512, 8, &v, 0); // non-persistent ctx
    MemorySystem::StoreCtx ctx;
    ctx.persistent = true;
    ctx.txSeq = 1;
    ms.store(0, ms.config().map.dramBase + 64, 8, &v, 0, ctx);
    EXPECT_TRUE(hook.events.empty());
}

TEST_F(MemorySystemTest, InvalidateAllModelsCrash)
{
    std::uint64_t v = 123;
    Addr a = nv + 524288;
    ms.store(0, a, 8, &v, 0);
    ms.invalidateAllCaches();
    EXPECT_FALSE(ms.isLineDirtyAnywhere(a));
    // The store never reached NVRAM: the device still reads zero.
    std::uint64_t out = 99;
    ms.nvram().functionalRead(a, 8, &out);
    EXPECT_EQ(out, 0u);
}

TEST_F(MemorySystemTest, FlushAllDirtyPersistsEverything)
{
    std::vector<Addr> addrs;
    for (int i = 0; i < 50; ++i)
        addrs.push_back(nv + 1048576 + 64 * i);
    std::uint64_t v = 0;
    for (Addr a : addrs) {
        ++v;
        ms.store(0, a, 8, &v, 0);
    }
    ms.flushAllDirty(10000);
    v = 0;
    for (Addr a : addrs) {
        std::uint64_t out = 0;
        ms.nvram().functionalRead(a, 8, &out);
        EXPECT_EQ(out, ++v);
    }
}

TEST_F(MemorySystemTest, EvictionWritesBackThroughHierarchy)
{
    // Stream enough lines through one L1 set to force evictions all
    // the way out, then check data integrity via another core.
    SystemConfig c = cfg4();
    std::uint64_t stride =
        c.l1.numSets() * c.l1.lineBytes; // same L1 set
    for (std::uint64_t i = 0; i < 64; ++i) {
        std::uint64_t v = i + 1;
        ms.store(0, nv + 2097152 + i * stride, 8, &v, i * 10);
    }
    for (std::uint64_t i = 0; i < 64; ++i) {
        std::uint64_t out = 0;
        ms.load(1, nv + 2097152 + i * stride, 8, &out, 100000 + i);
        EXPECT_EQ(out, i + 1);
    }
}

TEST_F(MemorySystemTest, UncacheableWritesReachDeviceOnDrain)
{
    std::uint64_t v = 0x55;
    Addr a = nv + 64; // log region area; raw device range
    ms.uncacheableWrite(a, 8, &v, 0);
    Tick done = ms.drainWcb(100);
    EXPECT_GE(done, 100u);
    std::uint64_t out = 0;
    ms.nvram().functionalRead(a, 8, &out);
    EXPECT_EQ(out, 0x55u);
}

TEST_F(MemorySystemTest, LoadsTrackHitLevels)
{
    Addr a = nv + 4194304;
    std::uint64_t out = 0;
    EXPECT_EQ(ms.load(0, a, 8, &out, 0).level, HitLevel::Memory);
    EXPECT_EQ(ms.load(0, a, 8, &out, 1000).level, HitLevel::L1);
    EXPECT_EQ(ms.load(1, a, 8, &out, 2000).level, HitLevel::L2);
}
