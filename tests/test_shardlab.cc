/**
 * @file
 * shardlab unit/integration tests: prepare and masked-commit record
 * round-trips, the config validation rules for sharded logs, the
 * cross-shard two-phase commit protocol on both logging backends,
 * end-to-end crash recovery of a transaction spanning shards,
 * degraded-mode recovery with a dead shard, and the merged
 * re-entrant truncation resume.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/system.hh"
#include "mem/backing_store.hh"
#include "persist/log_record.hh"
#include "persist/log_region.hh"
#include "persist/recovery.hh"

using namespace snf;
using namespace snf::persist;

// ------------------------- record format -------------------------

TEST(ShardRecord, PrepareRoundTrip)
{
    LogRecord rec = LogRecord::prepare(3, 0x1234, 7, 0x1122334455ull);
    EXPECT_TRUE(rec.isPrepare);
    EXPECT_FALSE(rec.isCommit);
    EXPECT_EQ(rec.payloadBytes(), 24u);

    std::uint8_t img[LogRecord::kSlotBytes];
    rec.serialize(img, /*torn=*/true);
    EXPECT_EQ(classifySlot(img).cls, SlotClass::Valid);

    bool torn = false;
    auto back = LogRecord::deserialize(img, torn);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(torn);
    EXPECT_TRUE(back->isPrepare);
    EXPECT_EQ(back->thread, 3u);
    EXPECT_EQ(back->tx, 0x1234u);
    EXPECT_EQ(back->nUpdates, 7u);
    EXPECT_EQ(back->commitSeq, 0x1122334455ull);
}

TEST(ShardRecord, MaskedCommitRoundTrip)
{
    LogRecord rec = LogRecord::commitMasked(1, 0x42, 3, 99, 0b1011ull);
    EXPECT_TRUE(rec.isCommit);
    EXPECT_TRUE(rec.hasShardMask);
    EXPECT_FALSE(rec.isPrepare);
    EXPECT_EQ(rec.payloadBytes(), 32u);

    std::uint8_t img[LogRecord::kSlotBytes];
    rec.serialize(img, /*torn=*/false);
    EXPECT_EQ(classifySlot(img).cls, SlotClass::Valid);

    bool torn = true;
    auto back = LogRecord::deserialize(img, torn);
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(torn);
    EXPECT_TRUE(back->isCommit);
    EXPECT_TRUE(back->hasShardMask);
    EXPECT_EQ(back->nUpdates, 3u);
    EXPECT_EQ(back->commitSeq, 99u);
    EXPECT_EQ(back->shardMask, 0b1011ull);
}

TEST(ShardRecord, LegacyPlainCommitCarriesNoShardFlags)
{
    // shards == 1 must keep the pre-shardlab wire format bit for
    // bit: a plain commit record serializes without the mask or
    // prepare flags and with the original 16-byte payload.
    LogRecord rec = LogRecord::commit(0, 7, 2);
    EXPECT_FALSE(rec.hasShardMask);
    EXPECT_FALSE(rec.isPrepare);
    EXPECT_EQ(rec.payloadBytes(), 16u);
    std::uint8_t img[LogRecord::kSlotBytes];
    rec.serialize(img, false);
    bool torn = false;
    auto back = LogRecord::deserialize(img, torn);
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(back->hasShardMask);
    EXPECT_EQ(back->shardMask, 0u);
}

// ----------------------- config validation -----------------------

TEST(ShardConfigDeathTest, RejectsBadShardCounts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    {
        SystemConfig cfg = SystemConfig::scaled(1);
        cfg.persist.logShards = 0;
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    "logShards");
    }
    {
        SystemConfig cfg = SystemConfig::scaled(1);
        cfg.persist.logShards = 65;
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    "logShards");
    }
    {
        // Shards and per-core partitions slice the same log area —
        // they are mutually exclusive.
        SystemConfig cfg = SystemConfig::scaled(2);
        cfg.persist.logShards = 2;
        cfg.persist.distributedLogs = true;
        EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                    "mutually exclusive");
    }
}

// ------------------- two-phase commit protocol -------------------

namespace
{

/** A transaction whose write-set spans several consecutive heap
 *  lines — with logShards=N, consecutive lines land in distinct
 *  shards, so this exercises the cross-shard commit. */
sim::Co<void>
spanningTxs(Thread &t, Addr base, int txs, int linesPerTx)
{
    for (int i = 0; i < txs; ++i) {
        co_await t.txBegin();
        for (int l = 0; l < linesPerTx; ++l) {
            Addr a = base + l * 64;
            std::uint64_t v = co_await t.load64(a);
            co_await t.store64(a, v + 1);
        }
        co_await t.txCommit();
    }
}

} // namespace

TEST(ShardProtocol, HwBackendEmitsPreparesAndMaskedCommits)
{
    SystemConfig cfg = SystemConfig::scaled(1);
    cfg.persist.logShards = 4;
    System sys(cfg, PersistMode::Fwb);
    Addr a = sys.heap().alloc(4096, 64);
    sys.spawn(0, [&](Thread &t) { return spanningTxs(t, a, 8, 3); });
    Tick end = sys.run();
    sys.flushAll(end);

    ASSERT_NE(sys.hwl(), nullptr);
    EXPECT_EQ(sys.hwl()->crossShardCommits.value(), 8u);
    EXPECT_EQ(sys.hwl()->prepareRecords.value(), 2u * 8u);
    EXPECT_EQ(sys.hwl()->commitRecords.value(), 8u);
    for (int l = 0; l < 3; ++l)
        EXPECT_EQ(sys.mem().nvram().store().read64(a + l * 64), 8u);
}

TEST(ShardProtocol, SwBackendEmitsPreparesAndMaskedCommits)
{
    SystemConfig cfg = SystemConfig::scaled(1);
    cfg.persist.logShards = 4;
    System sys(cfg, PersistMode::UndoClwb);
    Addr a = sys.heap().alloc(4096, 64);
    sys.spawn(0, [&](Thread &t) { return spanningTxs(t, a, 5, 2); });
    Tick end = sys.run();
    sys.flushAll(end);

    ASSERT_NE(sys.swlog(), nullptr);
    EXPECT_EQ(sys.swlog()->crossShardCommits.value(), 5u);
    EXPECT_EQ(sys.swlog()->prepareRecords.value(), 5u);
    for (int l = 0; l < 2; ++l)
        EXPECT_EQ(sys.mem().nvram().store().read64(a + l * 64), 5u);
}

TEST(ShardProtocol, SingleShardTxUsesPlainCommit)
{
    // A write-set confined to one shard must take the legacy plain
    // commit — no prepares, no masked record.
    SystemConfig cfg = SystemConfig::scaled(1);
    cfg.persist.logShards = 4;
    System sys(cfg, PersistMode::Fwb);
    Addr a = sys.heap().alloc(4096, 64);
    sys.spawn(0, [&](Thread &t) { return spanningTxs(t, a, 6, 1); });
    sys.run();

    EXPECT_EQ(sys.hwl()->commitRecords.value(), 6u);
    EXPECT_EQ(sys.hwl()->crossShardCommits.value(), 0u);
    EXPECT_EQ(sys.hwl()->prepareRecords.value(), 0u);
}

// ------------------ end-to-end crash recovery --------------------

namespace
{

sim::Co<void>
openForeverAcrossShards(Thread &t, Addr base)
{
    co_await t.txBegin();
    for (int l = 0; l < 3; ++l) {
        co_await t.store64(base + l * 64, 0xbad);
        co_await t.clwb(base + l * 64); // steal the line into NVRAM
    }
    co_await t.fence();
    co_await t.compute(1000000); // never commits before the crash
    co_await t.txCommit();
}

} // namespace

TEST(ShardRecoveryE2E, UncommittedCrossShardTxRollsBackEverywhere)
{
    SystemConfig cfg = SystemConfig::scaled(1);
    cfg.persist.logShards = 4;
    cfg.persist.crashJournal = true;
    System sys(cfg, PersistMode::Fwb);
    Addr a = sys.heap().alloc(4096, 64);
    sys.spawn(0, [&](Thread &t) {
        return openForeverAcrossShards(t, a);
    });
    Tick crash = 50000;
    sys.run(crash);

    mem::BackingStore snap = sys.crashSnapshot(crash);
    for (int l = 0; l < 3; ++l)
        EXPECT_EQ(snap.read64(a + l * 64), 0xbadu) << "line " << l;
    auto report = Recovery::run(snap, sys.config().map);
    EXPECT_EQ(report.uncommittedTxns, 1u);
    EXPECT_EQ(report.shards.size(), 4u);
    for (int l = 0; l < 3; ++l)
        EXPECT_EQ(snap.read64(a + l * 64), 0u) << "line " << l;
}

// ------------------- hand-built shard images ---------------------

namespace
{

/** Minimal multi-shard log image builder (mirrors the real
 *  LogRegion layout: header + slot array per shard). */
class ShardImage
{
  public:
    explicit ShardImage(std::uint32_t shards)
        : map(makeMap(shards)), image(map.nvramBase, 1 << 22),
          nShards(shards)
    {
        shardBytes = map.logSize / shards;
        slots = (shardBytes - LogRegion::kHeaderBytes) /
                LogRecord::kSlotBytes;
        tails.assign(shards, 0);
        for (std::uint32_t s = 0; s < shards; ++s) {
            std::uint64_t magic = LogRegion::kMagic;
            image.write(base(s), 8, &magic);
            image.write(base(s) + 8, 8, &slots);
        }
    }

    static AddressMap
    makeMap(std::uint32_t shards)
    {
        AddressMap m;
        m.nvramSize = 1 << 22;
        m.logSize = 8192;
        m.logShards = shards;
        return m;
    }

    Addr base(std::uint32_t s) const
    {
        return map.logBase() + s * shardBytes;
    }

    void
    append(std::uint32_t s, const LogRecord &rec)
    {
        std::uint8_t img[LogRecord::kSlotBytes];
        rec.serialize(img, /*torn=*/true); // first-pass parity
        image.write(base(s) + LogRegion::kHeaderBytes +
                        tails[s]++ * LogRecord::kSlotBytes,
                    sizeof(img), img);
    }

    /** Wipe shard @p s's header (a dead / unreadable shard). */
    void
    killShard(std::uint32_t s)
    {
        std::uint8_t zeros[LogRegion::kHeaderBytes] = {};
        image.write(base(s), sizeof(zeros), zeros);
    }

    /** Raise the re-entrant truncation flag on shard @p s. */
    void
    raiseTruncFlag(std::uint32_t s)
    {
        std::uint64_t flag = 1;
        image.write(base(s) + LogRegion::kTruncFlagOffset, 8, &flag);
    }

    /** A heap data line owned by shard @p s. */
    Addr
    lineForShard(std::uint32_t s) const
    {
        for (std::uint64_t k = 0;; ++k) {
            Addr a = map.heapBase() + k * 64;
            if ((a >> 6) % nShards == s)
                return a;
        }
    }

    AddressMap map;
    mem::BackingStore image;
    std::uint32_t nShards;
    std::uint64_t shardBytes = 0;
    std::uint64_t slots = 0;
    std::vector<std::uint64_t> tails;
};

} // namespace

TEST(ShardDegraded, DeadShardAbortsCrossingTxsSalvagesTheRest)
{
    // Shard 1 dies (header wiped). Three transactions:
    //   tx 2: cross-shard {0,1}, masked commit in live owner 0 —
    //         its slice in the dead shard is unrecoverable, so the
    //         whole tx must abort (undo the surviving slice);
    //   tx 3: entirely in live shard 2, committed — salvaged;
    //   tx 4: entirely in dead shard 1 — simply gone.
    ShardImage f(4);
    Addr l0 = f.lineForShard(0), l2 = f.lineForShard(2);

    f.append(0, LogRecord::update(0, 2, l0, 8, 0x20, 0x2A));
    f.append(1, LogRecord::prepare(0, 2, 1, 2));
    f.append(0, LogRecord::commitMasked(0, 2, 1, 2, 0b0011));
    f.image.write64(l0, 0x2A); // stolen

    f.append(2, LogRecord::update(0, 3, l2, 8, 0x30, 0x3A));
    f.append(2, LogRecord::commit(0, 3, 1));
    f.image.write64(l2, 0x30); // not yet written back: needs redo

    f.append(1,
             LogRecord::update(0, 4, f.lineForShard(1), 8, 0x40, 0x4A));
    f.append(1, LogRecord::commit(0, 4, 1));

    f.killShard(1);

    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(f.image.read64(l0), 0x20u) << "crossing tx not undone";
    EXPECT_EQ(f.image.read64(l2), 0x3Au) << "survivor not salvaged";
    EXPECT_EQ(report.deadShardAborted, 1u);
    ASSERT_EQ(report.deadShardAbortTxIds.size(), 1u);
    EXPECT_EQ(report.deadShardAbortTxIds[0], 2u);
    ASSERT_EQ(report.shards.size(), 4u);
    EXPECT_FALSE(report.shards[0].dead);
    EXPECT_TRUE(report.shards[1].dead);
    EXPECT_FALSE(report.shards[1].headerValid);
    EXPECT_EQ(report.shards[2].salvagedTxns, 1u);
}

TEST(ShardDegraded, PrepareWithDeadOwnerAborts)
{
    // The owner shard (which held the masked commit) dies; the
    // surviving participant sees prepare-but-no-commit plus a dead
    // shard. The commit's fate is unknowable, so the tx aborts and
    // its id is reported for the damage oracle to excuse.
    ShardImage f(2);
    Addr l1 = f.lineForShard(1);
    f.append(1, LogRecord::update(0, 5, l1, 8, 0x50, 0x5A));
    f.append(1, LogRecord::prepare(0, 5, 1, 5));
    f.append(0, LogRecord::commitMasked(0, 5, 0, 5, 0b11));
    f.image.write64(l1, 0x5A);
    f.killShard(0);

    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(f.image.read64(l1), 0x50u);
    EXPECT_EQ(report.committedTxns, 0u);
    ASSERT_EQ(report.deadShardAbortTxIds.size(), 1u);
    EXPECT_EQ(report.deadShardAbortTxIds[0], 5u);
}

TEST(ShardTruncation, InterruptedTruncationResumesOnAllLiveShards)
{
    // A crash inside a previous recovery's truncation: the flag is
    // up on one shard (all flags rise before any slot is zeroed, so
    // one raised flag proves replay completed). The resumed recovery
    // must finish zeroing every live shard without replaying.
    ShardImage f(4);
    Addr l0 = f.lineForShard(0);
    f.append(0, LogRecord::update(0, 6, l0, 8, 0x60, 0x6A));
    f.append(0, LogRecord::commit(0, 6, 1));
    f.image.write64(l0, 0x60);
    f.raiseTruncFlag(2);

    auto report = Recovery::run(f.image, f.map);
    // No replay: the committed tx's redo must NOT be applied again
    // (it already was, before the interrupted truncation).
    EXPECT_EQ(f.image.read64(l0), 0x60u);
    EXPECT_EQ(report.committedTxns, 0u);

    // Every shard is now empty and flag-free: a fresh recovery sees
    // a clean log.
    auto again = Recovery::run(f.image, f.map);
    EXPECT_EQ(again.validRecords, 0u);
    EXPECT_EQ(again.committedTxns, 0u);
    for (std::uint32_t s = 0; s < 4; ++s)
        EXPECT_TRUE(again.shards[s].headerValid) << "shard " << s;
}
