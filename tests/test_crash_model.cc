/**
 * @file
 * Crash-model component tests: what exactly survives a power failure.
 *  - LogBuffer: un-drained groups are dropped, and the torn-record
 *    test mode makes mid-drain slots observable (payload without a
 *    written header word), which recovery must reject.
 *  - MemorySystem: a crash invalidates dirty cache lines and drops
 *    the write-combining buffer.
 *  - Scheduler: run(stopAt) executes nothing at or past the stop
 *    tick, and a stopped run resumed to completion is
 *    indistinguishable from an uninterrupted one.
 */

#include <gtest/gtest.h>

#include <vector>

#include "crashlab/trace.hh"
#include "persist/recovery.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::workloads;

namespace
{

struct TracedRun
{
    TracedRun(PersistMode mode, std::uint32_t threads,
              std::uint64_t tx)
        : cfg(SystemConfig::scaled())
    {
        cfg.persist.crashJournal = true;
        sys = std::make_unique<System>(cfg, mode);
        wl = makeWorkload("sps");
        params.threads = threads;
        params.txPerThread = tx;
        params.seed = 5;
        wl->setup(*sys, params);
        sys->setProbe(trace.collector());
        for (CoreId c = 0; c < threads; ++c) {
            sys->spawn(c, [this](Thread &t) -> sim::Co<void> {
                return wl->thread(*sys, t, params);
            });
        }
    }

    SystemConfig cfg;
    WorkloadParams params;
    std::unique_ptr<System> sys;
    std::unique_ptr<Workload> wl;
    crashlab::CrashTrace trace;
};

} // namespace

// With the torn-record test mode (on whenever crashJournal is), a
// log-group drain lands payload bytes strictly before the slot's
// header word. Crashing between the two must hide the record (no
// written marker => rejected by the window scan), and the drain's
// completion tick must make it visible: the valid-record count
// strictly grows across at least one drain boundary, and recovery
// succeeds on both sides of every one.
TEST(CrashModel, LogDrainTornRecordObservability)
{
    TracedRun run(PersistMode::Fwb, 1, 20);
    Tick end = run.sys->run();
    run.trace.finalize();

    std::vector<Tick> drains;
    std::uint64_t drainedRecords = 0;
    for (const auto &e : run.trace.events()) {
        if (e.kind == sim::ProbeEvent::LogDrain && e.tick <= end) {
            drains.push_back(e.tick);
            drainedRecords += e.arg;
        }
    }
    ASSERT_GT(drains.size(), 2u);

    bool sawGrowth = false;
    std::uint64_t lastValid = 0;
    for (Tick t : drains) {
        mem::BackingStore before = run.sys->crashSnapshot(t - 1);
        mem::BackingStore after = run.sys->crashSnapshot(t);
        auto rb = persist::Recovery::run(before, run.sys->config().map);
        auto ra = persist::Recovery::run(after, run.sys->config().map);
        EXPECT_TRUE(rb.headerValid);
        EXPECT_TRUE(ra.headerValid);
        // A record becomes valid only once its header word lands.
        EXPECT_LE(rb.validRecords, ra.validRecords);
        if (ra.validRecords > rb.validRecords)
            sawGrowth = true;
        lastValid = ra.validRecords;
    }
    EXPECT_TRUE(sawGrowth);
    // No wraps in a 20-transaction run: everything ever drained is
    // still in the window at the last drain instant.
    EXPECT_EQ(lastValid, drainedRecords);
}

// Un-drained log-buffer contents die with the power: a snapshot
// never contains more records than the drains that completed by
// then, and LogBuffer::dropAll empties the buffer without touching
// NVRAM.
TEST(CrashModel, LogBufferDropAllLosesBufferedRecords)
{
    TracedRun run(PersistMode::Fwb, 1, 20);
    Tick end = run.sys->run();
    run.trace.finalize();

    // Crash halfway: the snapshot must hold exactly the records of
    // completed drains, nothing from the (volatile) buffer.
    Tick mid = end / 2;
    std::uint64_t drainedByMid = 0;
    for (const auto &e : run.trace.events())
        if (e.kind == sim::ProbeEvent::LogDrain && e.tick <= mid)
            drainedByMid += e.arg;
    mem::BackingStore snap = run.sys->crashSnapshot(mid);
    auto rep = persist::Recovery::run(snap, run.sys->config().map);
    EXPECT_EQ(rep.validRecords, drainedByMid);

    persist::LogBuffer *buf = run.sys->logBuffer();
    ASSERT_NE(buf, nullptr);
    std::size_t journalBefore =
        run.sys->mem().nvram().store().journalSize();
    buf->dropAll();
    EXPECT_EQ(buf->occupancy(end), 0u);
    EXPECT_EQ(run.sys->mem().nvram().store().journalSize(),
              journalBefore);
}

// A crash invalidates every cache: dirty lines are lost and
// subsequent loads see the NVRAM image, not the cached value.
TEST(CrashModel, InvalidateAllCachesDropsDirtyLines)
{
    SystemConfig cfg = SystemConfig::scaled();
    System sys(cfg, PersistMode::NonPers);
    Addr a = sys.heap().alloc(8);
    sys.heap().prewrite64(a, 0xAAu);

    std::uint64_t v = 0xBBu;
    sys.mem().store(0, a, 8, &v, 0);
    std::uint64_t cached = 0;
    Tick t = sys.mem().load(0, a, 8, &cached, 100).done;
    EXPECT_EQ(cached, 0xBBu);
    EXPECT_EQ(sys.mem().nvram().store().read64(a), 0xAAu);

    sys.mem().invalidateAllCaches();

    std::uint64_t seen = 0;
    sys.mem().load(0, a, 8, &seen, t + 100);
    EXPECT_EQ(seen, 0xAAu);
}

// The write-combining buffer is volatile too: pending uncacheable
// stores are dropped, and a later fence has nothing to drain.
TEST(CrashModel, InvalidateAllCachesDropsWcb)
{
    SystemConfig cfg = SystemConfig::scaled();
    System sys(cfg, PersistMode::UnsafeRedo);
    Addr a = sys.heap().alloc(64);
    sys.heap().prewrite64(a, 0u);

    std::uint64_t v = 0x1234u;
    sys.mem().wcb().append(a, 8, &v, 0);
    EXPECT_EQ(sys.mem().wcb().occupancy(), 1u);

    sys.mem().invalidateAllCaches();
    EXPECT_EQ(sys.mem().wcb().occupancy(), 0u);
    EXPECT_EQ(sys.mem().nvram().store().read64(a), 0u);
    sys.mem().drainWcb(1000);
    EXPECT_EQ(sys.mem().nvram().store().read64(a), 0u);
}

// run(stopAt) semantics: nothing executes at or past the stop tick —
// run(0) runs zero instructions — and resuming a stopped run yields
// exactly the uninterrupted run's end tick and final NVRAM image.
TEST(CrashModel, SchedulerStopAtTickAndResume)
{
    WorkloadParams params;
    params.threads = 2;
    params.txPerThread = 15;
    params.seed = 9;

    auto build = [&](System &sys, Workload &wl) {
        wl.setup(sys, params);
        for (CoreId c = 0; c < params.threads; ++c) {
            sys.spawn(c, [&](Thread &t) -> sim::Co<void> {
                return wl.thread(sys, t, params);
            });
        }
    };

    SystemConfig cfg = SystemConfig::scaled();

    // Uninterrupted reference.
    System ref(cfg, PersistMode::Fwb);
    auto wlRef = makeWorkload("sps");
    build(ref, *wlRef);
    Tick refEnd = ref.run();
    ref.flushAll(refEnd);

    // Stopped at tick 0 (nothing may run), then resumed.
    System stopped(cfg, PersistMode::Fwb);
    auto wlStop = makeWorkload("sps");
    build(stopped, *wlStop);
    Tick at0 = stopped.run(0);
    EXPECT_EQ(at0, 0u);
    RunStats none = stopped.collectStats(0);
    EXPECT_EQ(none.instr.total, 0u);
    EXPECT_EQ(none.committedTx, 0u);

    // Stop again mid-run, then run to completion.
    stopped.run(refEnd / 2);
    Tick resumedEnd = stopped.run();
    EXPECT_EQ(resumedEnd, refEnd);
    stopped.flushAll(resumedEnd);

    auto diff = stopped.mem().nvram().store().firstDifference(
        ref.mem().nvram().store(), cfg.map.nvramBase,
        cfg.map.nvramSize);
    EXPECT_FALSE(diff.has_value())
        << "resumed image differs at 0x" << std::hex << *diff;
}
