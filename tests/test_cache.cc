/**
 * @file
 * Unit tests for the passive cache array: lookup, install, LRU
 * victim selection, invalidation, and the fwb tag bit.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace snf;
using namespace snf::mem;

namespace
{

CacheConfig
smallConfig()
{
    CacheConfig cfg;
    cfg.sizeBytes = 1024; // 16 lines
    cfg.ways = 4;         // 4 sets
    cfg.lineBytes = 64;
    cfg.latency = 4;
    return cfg;
}

void
installLine(Cache &c, Addr lineAddr)
{
    CacheLine *slot = c.victimFor(lineAddr);
    if (slot->valid)
        c.invalidate(slot);
    c.install(slot, lineAddr);
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache c("t", smallConfig());
    EXPECT_EQ(c.find(0x1000), nullptr);
    installLine(c, 0x1000);
    ASSERT_NE(c.find(0x1000), nullptr);
    EXPECT_EQ(c.find(0x1000)->lineAddr, 0x1000u);
}

TEST(Cache, LineOfMasksOffset)
{
    Cache c("t", smallConfig());
    EXPECT_EQ(c.lineOf(0x1234), 0x1200u);
    EXPECT_EQ(c.lineOf(0x1240), 0x1240u);
}

TEST(Cache, InstallStartsCleanAndValid)
{
    Cache c("t", smallConfig());
    installLine(c, 0x40);
    CacheLine *l = c.find(0x40);
    EXPECT_TRUE(l->valid);
    EXPECT_FALSE(l->dirty);
    EXPECT_FALSE(l->fwb);
}

TEST(Cache, LruVictimIsLeastRecentlyTouched)
{
    Cache c("t", smallConfig());
    // Fill one set: set index = (addr/64) % 4; use set 0.
    Addr lines[4] = {0 * 256, 1 * 256, 2 * 256, 3 * 256};
    for (Addr a : lines)
        installLine(c, a);
    // Touch all but lines[2].
    c.touch(c.find(lines[0]));
    c.touch(c.find(lines[1]));
    c.touch(c.find(lines[3]));
    CacheLine *victim = c.victimFor(4 * 256);
    EXPECT_EQ(victim->lineAddr, lines[2]);
}

TEST(Cache, VictimPrefersInvalidWay)
{
    Cache c("t", smallConfig());
    installLine(c, 0);
    installLine(c, 256);
    CacheLine *victim = c.victimFor(512);
    EXPECT_FALSE(victim->valid);
}

TEST(Cache, InvalidateClearsAllState)
{
    Cache c("t", smallConfig());
    installLine(c, 0x80);
    CacheLine *l = c.find(0x80);
    l->dirty = true;
    l->fwb = true;
    c.invalidate(l);
    EXPECT_FALSE(l->valid);
    EXPECT_FALSE(l->dirty);
    EXPECT_FALSE(l->fwb);
    EXPECT_EQ(c.find(0x80), nullptr);
}

TEST(Cache, InvalidateAll)
{
    Cache c("t", smallConfig());
    for (Addr a = 0; a < 16 * 64; a += 64)
        installLine(c, a);
    c.invalidateAll();
    for (Addr a = 0; a < 16 * 64; a += 64)
        EXPECT_EQ(c.find(a), nullptr);
}

TEST(Cache, ForEachLineVisitsAllSlots)
{
    Cache c("t", smallConfig());
    std::size_t n = 0;
    c.forEachLine([&](CacheLine &) { ++n; });
    EXPECT_EQ(n, 16u);
}

TEST(Cache, SetsDoNotAlias)
{
    Cache c("t", smallConfig());
    installLine(c, 0);   // set 0
    installLine(c, 64);  // set 1
    installLine(c, 128); // set 2
    installLine(c, 192); // set 3
    EXPECT_NE(c.find(0), nullptr);
    EXPECT_NE(c.find(64), nullptr);
    EXPECT_NE(c.find(128), nullptr);
    EXPECT_NE(c.find(192), nullptr);
}

TEST(Cache, DataSizedToLine)
{
    Cache c("t", smallConfig());
    installLine(c, 0);
    EXPECT_EQ(c.find(0)->data.size(), 64u);
}
