/**
 * @file
 * Tests for the experiment driver and the workload registry: spec
 * validation (death on misconfiguration), crash-run plumbing, string
 * variants across modes, and run-to-run reproducibility of results.
 */

#include <gtest/gtest.h>

#include "workloads/driver.hh"

using namespace snf;
using namespace snf::workloads;

TEST(WorkloadRegistry, AllNamesConstruct)
{
    for (const auto &name : allWorkloadNames()) {
        auto wl = makeWorkload(name);
        ASSERT_NE(wl, nullptr);
        EXPECT_EQ(wl->name(), name);
    }
    EXPECT_EQ(microbenchNames().size(), 5u);
    EXPECT_EQ(whisperNames().size(), 6u);
}

TEST(WorkloadRegistryDeath, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT(makeWorkload("no-such-workload"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(DriverDeath, TooManyThreadsIsFatal)
{
    RunSpec spec;
    spec.workload = "sps";
    spec.params.threads = 8;
    spec.sys = SystemConfig::scaled(2);
    EXPECT_EXIT(runWorkload(spec), ::testing::ExitedWithCode(1),
                "threads but only");
}

TEST(DriverDeath, CrashWithoutJournalIsFatal)
{
    RunSpec spec;
    spec.workload = "sps";
    spec.params.threads = 1;
    spec.sys = SystemConfig::scaled(1);
    spec.crashAt = 1000;
    EXPECT_EXIT(runWorkload(spec), ::testing::ExitedWithCode(1),
                "crashJournal");
}

TEST(Driver, CrashAfterCompletionIsGraceful)
{
    RunSpec spec;
    spec.workload = "sps";
    spec.mode = PersistMode::Fwb;
    spec.params.threads = 1;
    spec.params.txPerThread = 5;
    spec.params.footprint = 128;
    spec.sys = SystemConfig::scaled(1);
    spec.sys.persist.crashJournal = true;
    spec.crashAt = kTickNever - 1; // far beyond the run
    auto outcome = runWorkload(spec);
    EXPECT_FALSE(outcome.crashed);
    EXPECT_TRUE(outcome.verified);
    EXPECT_EQ(outcome.stats.committedTx, 5u);
}

TEST(Driver, ResultsAreReproducible)
{
    auto run = [] {
        RunSpec spec;
        spec.workload = "hash";
        spec.mode = PersistMode::UndoClwb;
        spec.params.threads = 2;
        spec.params.txPerThread = 100;
        spec.params.footprint = 256;
        spec.params.seed = 99;
        spec.sys = SystemConfig::scaled(2);
        return runWorkload(spec);
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.instr.total, b.stats.instr.total);
    EXPECT_EQ(a.stats.nvramWriteBytes, b.stats.nvramWriteBytes);
    EXPECT_EQ(a.endTick, b.endTick);
}

TEST(Driver, SeedChangesExecution)
{
    auto run = [](std::uint64_t seed) {
        RunSpec spec;
        spec.workload = "hash";
        spec.mode = PersistMode::Fwb;
        spec.params.threads = 1;
        spec.params.txPerThread = 200;
        spec.params.footprint = 256;
        spec.params.seed = seed;
        spec.sys = SystemConfig::scaled(1);
        return runWorkload(spec);
    };
    EXPECT_NE(run(1).stats.cycles, run(2).stats.cycles);
}

TEST(Driver, StatsExcludeFinalFlush)
{
    RunSpec spec;
    spec.workload = "sps";
    spec.mode = PersistMode::NonPers;
    spec.params.threads = 1;
    spec.params.txPerThread = 200;
    spec.params.footprint = 1024;
    spec.sys = SystemConfig::scaled(1);

    spec.flushAtEnd = false;
    spec.verifyAtEnd = false;
    auto without = runWorkload(spec);
    spec.flushAtEnd = true;
    auto with = runWorkload(spec);
    // Cycles and traffic are identical: the flush serves
    // verification only.
    EXPECT_EQ(without.stats.cycles, with.stats.cycles);
    EXPECT_EQ(without.stats.nvramWrites, with.stats.nvramWrites);
}

TEST(Driver, VerificationCatchesCorruption)
{
    // Run sps gracefully, then corrupt the NVRAM image by hand and
    // re-verify through the workload's checker.
    SystemConfig cfg = SystemConfig::scaled(1);
    System sys(cfg, PersistMode::Fwb);
    auto wl = makeWorkload("sps");
    WorkloadParams params;
    params.threads = 1;
    params.txPerThread = 10;
    params.footprint = 128;
    wl->setup(sys, params);
    sys.spawn(0, [&](Thread &t) {
        return wl->thread(sys, t, params);
    });
    Tick end = sys.run();
    sys.flushAll(end);
    std::string why;
    ASSERT_TRUE(wl->verify(sys.mem().nvram().store(), &why)) << why;
    // Corrupt one element: the sum/xor invariant must now fail.
    sys.mem().nvram().functionalWrite(
        cfg.map.heapBase(), 8, "\xff\xff\xff\xff\xff\xff\xff\xff");
    EXPECT_FALSE(wl->verify(sys.mem().nvram().store(), &why));
    EXPECT_FALSE(why.empty());
}
