/**
 * @file
 * Unit tests for the logging substrate: record serialization, the
 * circular log region (wrap, torn-bit passes, truncation, growth,
 * reclamation hazards), the log buffer (coalescing, capacity
 * back-pressure), and the write-combining buffer.
 */

#include <gtest/gtest.h>

#include "mem/bus_monitor.hh"
#include "mem/mem_device.hh"
#include "mem/write_combine_buffer.hh"
#include "persist/log_buffer.hh"
#include "persist/log_record.hh"
#include "persist/log_region.hh"

using namespace snf;
using namespace snf::persist;

namespace
{

AddressMap
smallMap()
{
    AddressMap map;
    map.logSize = 4096; // 126 slots
    return map;
}

MemDeviceConfig
nvCfg()
{
    MemDeviceConfig cfg;
    cfg.sizeBytes = 1 << 24;
    return cfg;
}

LogRecord
rec(std::uint16_t tx, Addr addr, std::uint64_t undo,
    std::uint64_t redo)
{
    return LogRecord::update(0, tx, addr, 8, undo, redo);
}

} // namespace

// ----------------------------- records --------------------------

TEST(LogRecord, RoundTripFullRecord)
{
    LogRecord r = LogRecord::update(3, 0xbeef, 0x123456789abcULL, 8,
                                    111, 222);
    std::uint8_t img[LogRecord::kSlotBytes];
    r.serialize(img, true);
    bool torn = false;
    auto parsed = LogRecord::deserialize(img, torn);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(torn);
    EXPECT_EQ(parsed->thread, 3);
    EXPECT_EQ(parsed->tx, 0xbeef);
    EXPECT_EQ(parsed->addr, 0x123456789abcULL);
    EXPECT_EQ(parsed->size, 8);
    EXPECT_TRUE(parsed->hasUndo);
    EXPECT_TRUE(parsed->hasRedo);
    EXPECT_EQ(parsed->undo, 111u);
    EXPECT_EQ(parsed->redo, 222u);
}

TEST(LogRecord, UndoOnlyAndRedoOnly)
{
    LogRecord u = LogRecord::update(0, 1, 64, 4, 7, std::nullopt);
    LogRecord r = LogRecord::update(0, 1, 64, 4, std::nullopt, 9);
    std::uint8_t img[LogRecord::kSlotBytes];
    bool torn = false;

    u.serialize(img, false);
    auto pu = LogRecord::deserialize(img, torn);
    ASSERT_TRUE(pu);
    EXPECT_TRUE(pu->hasUndo);
    EXPECT_FALSE(pu->hasRedo);
    EXPECT_EQ(pu->undo, 7u);

    r.serialize(img, false);
    auto pr = LogRecord::deserialize(img, torn);
    ASSERT_TRUE(pr);
    EXPECT_FALSE(pr->hasUndo);
    EXPECT_TRUE(pr->hasRedo);
    EXPECT_EQ(pr->redo, 9u);
}

TEST(LogRecord, CommitRecord)
{
    LogRecord c = LogRecord::commit(2, 42);
    std::uint8_t img[LogRecord::kSlotBytes];
    c.serialize(img, true);
    bool torn = false;
    auto parsed = LogRecord::deserialize(img, torn);
    ASSERT_TRUE(parsed);
    EXPECT_TRUE(parsed->isCommit);
    EXPECT_EQ(parsed->tx, 42);
}

TEST(LogRecord, UnwrittenSlotRejected)
{
    std::uint8_t img[LogRecord::kSlotBytes] = {};
    bool torn = false;
    EXPECT_FALSE(LogRecord::deserialize(img, torn).has_value());
}

TEST(LogRecord, PayloadBytes)
{
    EXPECT_EQ(rec(1, 0, 1, 2).payloadBytes(), 32u);
    EXPECT_EQ(LogRecord::update(0, 1, 0, 8, 1, std::nullopt)
                  .payloadBytes(),
              24u);
    EXPECT_EQ(LogRecord::commit(0, 1).payloadBytes(), 16u);
}

class LogRecordSizes : public ::testing::TestWithParam<std::uint8_t>
{
};

TEST_P(LogRecordSizes, SizeFieldRoundTrips)
{
    LogRecord r =
        LogRecord::update(1, 2, 0x1000, GetParam(), 5, 6);
    std::uint8_t img[LogRecord::kSlotBytes];
    r.serialize(img, false);
    bool torn = true;
    auto parsed = LogRecord::deserialize(img, torn);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->size, GetParam());
    EXPECT_FALSE(torn);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, LogRecordSizes,
                         ::testing::Values(1, 2, 4, 8));

// ----------------------------- region ---------------------------

TEST(LogRegion, SequentialSlots)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    auto r1 = region.reserve(rec(1, 0, 1, 2), 0);
    auto r2 = region.reserve(rec(1, 8, 1, 2), 10);
    EXPECT_EQ(r1.slot + 1, r2.slot);
    EXPECT_EQ(r2.addr, r1.addr + LogRecord::kSlotBytes);
    EXPECT_EQ(r1.torn, r2.torn);
}

TEST(LogRegion, TornFlipsOnWrap)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    bool first_torn =
        region.reserve(rec(1, 0, 1, 2), 0).torn;
    for (std::uint64_t i = 1; i < region.slotCount(); ++i)
        region.reserve(rec(1, 0, 1, 2), i);
    // Next append starts pass 2.
    bool second_pass_torn =
        region.reserve(rec(1, 0, 1, 2), 1000).torn;
    EXPECT_NE(first_torn, second_pass_torn);
    EXPECT_EQ(region.wraps.value(), 1u);
}

TEST(LogRegion, ReclaimHazardOnActiveTx)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    region.setTxActive([](std::uint64_t seq) { return seq == 7; });
    int hazards = 0;
    region.setHazardSink([&]() { ++hazards; });

    auto r = region.reserve(rec(1, 0, 1, 2), 0);
    region.bindSlotTx(r.slot, 7); // still active when reclaimed
    for (std::uint64_t i = 0; i < region.slotCount(); ++i)
        region.reserve(rec(1, 0, 1, 2), i + 1);
    EXPECT_EQ(hazards, 1);
    EXPECT_EQ(region.hazards.value(), 1u);
}

TEST(LogRegion, ReclaimHazardOnUnpersistedData)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    region.setTxActive([](std::uint64_t) { return false; });
    region.setPersistedSince(
        [](Addr, Tick, Tick) { return false; }); // nothing persisted
    region.reserve(rec(1, 0x2000, 1, 2), 0);
    for (std::uint64_t i = 0; i < region.slotCount(); ++i)
        region.reserve(rec(1, 0x2000, 1, 2), i + 1);
    EXPECT_GT(region.hazards.value(), 0u);
}

TEST(LogRegion, NoHazardWhenDataPersisted)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    region.setTxActive([](std::uint64_t) { return false; });
    region.setPersistedSince([](Addr, Tick, Tick) { return true; });
    for (std::uint64_t i = 0; i < 3 * region.slotCount(); ++i)
        region.reserve(rec(1, 0x2000, 1, 2), i);
    EXPECT_EQ(region.hazards.value(), 0u);
}

TEST(LogRegion, CommitRecordsReclaimFreely)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    region.setTxActive([](std::uint64_t) { return true; });
    region.setPersistedSince([](Addr, Tick, Tick) { return false; });
    for (std::uint64_t i = 0; i < 2 * region.slotCount(); ++i)
        region.reserve(LogRecord::commit(0, 1), i);
    EXPECT_EQ(region.hazards.value(), 0u);
}

TEST(LogRegion, TruncateResetsAndClearsMarkers)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    auto r = region.reserve(rec(1, 0, 1, 2), 0);
    std::uint8_t img[LogRecord::kSlotBytes];
    rec(1, 0, 1, 2).serialize(img, r.torn);
    nv.functionalWrite(r.addr, sizeof(img), img);

    region.truncate(100);
    EXPECT_EQ(region.tailSlot(), 0u);
    // Slot markers cleared in NVRAM.
    std::uint8_t out[LogRecord::kSlotBytes];
    nv.functionalRead(r.addr, sizeof(out), out);
    bool torn = false;
    EXPECT_FALSE(LogRecord::deserialize(out, torn).has_value());
}

TEST(LogRegion, GrowChangesSlotCount)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    std::uint64_t before = region.slotCount();
    region.grow(8192, 0);
    EXPECT_GT(region.slotCount(), before);
    EXPECT_EQ(region.tailSlot(), 0u);
}

// --------------------------- log buffer -------------------------

TEST(LogBuffer, CoalescesAdjacentSlots)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    LogBuffer buf(region, nv, nullptr, 16, 64);
    for (int i = 0; i < 4; ++i)
        buf.append(rec(1, 0x1000 + i * 8, i, i), i);
    buf.drainAll(100);
    // 4 x 32B slots = 2 x 64B lines => 2 groups.
    EXPECT_EQ(buf.stats().counterValue("groups"), 2u);
    EXPECT_EQ(buf.stats().counterValue("bytes"), 128u);
}

TEST(LogBuffer, DrainMakesRecordsDurable)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    LogBuffer buf(region, nv, nullptr, 16, 64);
    buf.append(rec(9, 0x4000, 5, 6), 0);
    std::uint64_t slot = buf.lastSlot();
    buf.drainAll(10);
    std::uint8_t img[LogRecord::kSlotBytes];
    nv.functionalRead(region.slotAddr(slot), sizeof(img), img);
    bool torn = false;
    auto parsed = LogRecord::deserialize(img, torn);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->tx, 9);
    EXPECT_EQ(parsed->undo, 5u);
}

TEST(LogBuffer, ZeroCapacityStallsOnBus)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    LogBuffer buf(region, nv, nullptr, 0, 64);
    Tick t = 0;
    for (int i = 0; i < 20; ++i)
        t = std::max(t, buf.append(rec(1, 0x1000, 1, 2), t));
    // Serial bus acceptance forces the producer to slow down.
    EXPECT_GT(buf.stats().counterValue("stalls"), 0u);
}

TEST(LogBuffer, LargeCapacityAbsorbsBursts)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    LogBuffer buf(region, nv, nullptr, 64, 64);
    for (int i = 0; i < 30; ++i) {
        Tick proceed = buf.append(rec(1, 0x1000, 1, 2), i);
        EXPECT_EQ(proceed, static_cast<Tick>(i));
    }
    EXPECT_EQ(buf.stats().counterValue("stalls"), 0u);
}

TEST(LogBuffer, DropAllModelsCrash)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    LogBuffer buf(region, nv, nullptr, 16, 64);
    buf.append(rec(3, 0x8000, 1, 2), 0);
    std::uint64_t slot = buf.lastSlot();
    buf.dropAll(); // never drained
    std::uint8_t img[LogRecord::kSlotBytes];
    nv.functionalRead(region.slotAddr(slot), sizeof(img), img);
    bool torn = false;
    EXPECT_FALSE(LogRecord::deserialize(img, torn).has_value());
}

TEST(LogBuffer, ReportsOrderingToMonitor)
{
    mem::MemDevice nv("nv", nvCfg(), smallMap().nvramBase);
    LogRegion region(smallMap(), nv);
    region.create();
    mem::BusMonitor monitor;
    LogBuffer buf(region, nv, &monitor, 16, 64);
    Addr data_line = 0x140000000ULL;
    buf.append(rec(1, data_line + 8, 1, 2), 0);
    Tick drained = buf.drainAll(5);
    // Data write-back after the drain: no violation.
    monitor.onDataWriteback(data_line, drained + 10, drained + 20);
    EXPECT_EQ(monitor.orderViolations(), 0u);
}

TEST(BusMonitor, FlagsDataBeforeLog)
{
    mem::BusMonitor monitor;
    Addr line = 0x1000;
    monitor.onLogAppend(line, 100);
    // Data line reaches NVRAM before the record drains.
    monitor.onDataWriteback(line, 150, 160);
    EXPECT_EQ(monitor.orderViolations(), 1u);
}

TEST(BusMonitor, TracksLastWriteback)
{
    mem::BusMonitor monitor;
    EXPECT_EQ(monitor.lastWritebackOf(0x40), 0u);
    monitor.onDataWriteback(0x40, 10, 25);
    EXPECT_EQ(monitor.lastWritebackOf(0x40), 25u);
}

// ------------------------------ WCB -----------------------------

TEST(Wcb, CoalescesSameLine)
{
    mem::MemDevice nv("nv", nvCfg(), 0);
    mem::WriteCombineBuffer wcb(nv, 4, 64);
    std::uint64_t v = 1;
    wcb.append(0x100, 8, &v, 0);
    v = 2;
    wcb.append(0x108, 8, &v, 1);
    EXPECT_EQ(wcb.occupancy(), 1u);
    EXPECT_EQ(wcb.coalescedStores.value(), 1u);
    wcb.drainAll(10);
    EXPECT_EQ(nv.store().read64(0x100), 1u);
    EXPECT_EQ(nv.store().read64(0x108), 2u);
}

TEST(Wcb, EvictsOldestWhenFull)
{
    mem::MemDevice nv("nv", nvCfg(), 0);
    mem::WriteCombineBuffer wcb(nv, 2, 64);
    std::uint64_t v = 7;
    wcb.append(0x000, 8, &v, 0);
    wcb.append(0x100, 8, &v, 1);
    wcb.append(0x200, 8, &v, 2); // evicts line 0x000
    EXPECT_EQ(wcb.occupancy(), 2u);
    EXPECT_EQ(nv.store().read64(0x000), 7u); // flushed to device
}

TEST(Wcb, DropAllLosesUnflushed)
{
    mem::MemDevice nv("nv", nvCfg(), 0);
    mem::WriteCombineBuffer wcb(nv, 4, 64);
    std::uint64_t v = 9;
    wcb.append(0x300, 8, &v, 0);
    wcb.dropAll();
    EXPECT_EQ(nv.store().read64(0x300), 0u);
}
