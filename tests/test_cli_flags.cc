/**
 * @file
 * Tests for the shared fault-flag CLI parser (core/fault_flags.hh):
 * the preset/explicit-rate ordering contract, the contradiction
 * diagnostics, the seed exemption, and both flag spellings.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fault_flags.hh"

using namespace snf;

namespace
{

/** A fault-config stand-in plus a fully wired flag set over it. */
struct Fixture
{
    double bitFlip = 0.0;
    double multiBit = 0.0;
    double drop = 0.0;
    std::uint64_t seed = 1;
    FaultFlagSet flags;

    Fixture()
    {
        flags.addRate("--fault-bitflip", &bitFlip);
        flags.addRate("--fault-multibit", &multiBit);
        flags.addRate("--fault-drop", &drop);
        flags.addSeed("--fault-seed", &seed);
        flags.setPresetFlag("--fault-preset");
        flags.addPreset("light", {{&bitFlip, 1e-4}});
        flags.addPreset("heavy",
                        {{&bitFlip, 1e-3}, {&multiBit, 2e-4}});
    }

    /** Feed the whole arg vector; returns the first non-Ok result. */
    FlagParse
    parse(std::vector<std::string> args, std::string *err = nullptr)
    {
        for (std::size_t i = 0; i < args.size(); ++i) {
            FlagParse r = flags.consume(args, i, err);
            if (r != FlagParse::Ok)
                return r;
        }
        return FlagParse::Ok;
    }
};

} // namespace

TEST(FaultFlags, ExplicitRatesAndBothSpellings)
{
    Fixture f;
    EXPECT_EQ(f.parse({"--fault-bitflip", "0.5", "--fault-drop=0.25"}),
              FlagParse::Ok);
    EXPECT_DOUBLE_EQ(f.bitFlip, 0.5);
    EXPECT_DOUBLE_EQ(f.drop, 0.25);
    EXPECT_DOUBLE_EQ(f.multiBit, 0.0);
}

TEST(FaultFlags, PresetAssignsItsFields)
{
    Fixture f;
    EXPECT_EQ(f.parse({"--fault-preset", "heavy"}), FlagParse::Ok);
    EXPECT_DOUBLE_EQ(f.bitFlip, 1e-3);
    EXPECT_DOUBLE_EQ(f.multiBit, 2e-4);
    EXPECT_EQ(f.flags.activePreset(), "heavy");
}

TEST(FaultFlags, PresetAfterExplicitRateIsAnError)
{
    // The silent-clobber bug this parser fixes: the preset would
    // wholesale overwrite the config and the earlier explicit rate
    // silently vanished.
    Fixture f;
    std::string err;
    EXPECT_EQ(f.parse({"--fault-bitflip", "0.5", "--fault-preset",
                       "heavy"},
                      &err),
              FlagParse::Error);
    EXPECT_NE(err.find("put the preset first"), std::string::npos);
    // The explicit rate survives untouched.
    EXPECT_DOUBLE_EQ(f.bitFlip, 0.5);
}

TEST(FaultFlags, ZeroingAPresetFieldIsAnError)
{
    Fixture f;
    std::string err;
    EXPECT_EQ(f.parse({"--fault-preset", "heavy", "--fault-bitflip",
                       "0"},
                      &err),
              FlagParse::Error);
    EXPECT_NE(err.find("contradicts"), std::string::npos);
    EXPECT_NE(err.find("heavy"), std::string::npos);
    EXPECT_DOUBLE_EQ(f.bitFlip, 1e-3); // preset value untouched
}

TEST(FaultFlags, NonzeroTuneAfterPresetIsValid)
{
    Fixture f;
    EXPECT_EQ(f.parse({"--fault-preset", "heavy", "--fault-bitflip",
                       "5e-3"}),
              FlagParse::Ok);
    EXPECT_DOUBLE_EQ(f.bitFlip, 5e-3);
    EXPECT_DOUBLE_EQ(f.multiBit, 2e-4); // rest of the preset stands
}

TEST(FaultFlags, ZeroingAFieldThePresetLeavesAloneIsValid)
{
    // 'light' only sets bitFlip; zeroing multiBit after it
    // contradicts nothing.
    Fixture f;
    EXPECT_EQ(f.parse({"--fault-preset", "light", "--fault-multibit",
                       "0"}),
              FlagParse::Ok);
    EXPECT_DOUBLE_EQ(f.multiBit, 0.0);
}

TEST(FaultFlags, SeedIsOrderExempt)
{
    Fixture f;
    EXPECT_EQ(f.parse({"--fault-bitflip", "0.5", "--fault-seed",
                       "42", "--fault-preset=light"}),
              FlagParse::Error); // preset still rejected...
    Fixture g;
    EXPECT_EQ(g.parse({"--fault-seed=42", "--fault-preset", "light",
                       "--fault-seed", "7"}),
              FlagParse::Ok); // ...but the seed never is
    EXPECT_EQ(g.seed, 7u);
}

TEST(FaultFlags, UnknownPresetIsAnError)
{
    Fixture f;
    std::string err;
    EXPECT_EQ(f.parse({"--fault-preset", "medium"}, &err),
              FlagParse::Error);
    EXPECT_NE(err.find("unknown preset"), std::string::npos);
    EXPECT_NE(err.find("light"), std::string::npos);
    EXPECT_NE(err.find("heavy"), std::string::npos);
}

TEST(FaultFlags, OutOfRangeRateIsAnError)
{
    Fixture f;
    std::string err;
    EXPECT_EQ(f.parse({"--fault-bitflip", "1.5"}, &err),
              FlagParse::Error);
    EXPECT_NE(err.find("probability"), std::string::npos);
}

TEST(FaultFlags, MissingValueIsAnError)
{
    Fixture f;
    std::string err;
    EXPECT_EQ(f.parse({"--fault-bitflip"}, &err), FlagParse::Error);
    EXPECT_NE(err.find("needs a value"), std::string::npos);
}

TEST(FaultFlags, ForeignFlagsAreNotMine)
{
    Fixture f;
    std::vector<std::string> args{"--workload", "sps"};
    std::size_t i = 0;
    EXPECT_EQ(f.flags.consume(args, i, nullptr), FlagParse::NotMine);
    EXPECT_EQ(i, 0u);
}

// ---- Strict count / --log-shards parsing (shared by the tools) ----

TEST(CountFlag, ParsesWholeValuesInAnyBase)
{
    EXPECT_EQ(parseCountFlag("--jobs", "8"), 8u);
    EXPECT_EQ(parseCountFlag("--jobs", "0"), 0u);
    EXPECT_EQ(parseCountFlag("--max-points", "0x20"), 32u);
}

TEST(CountFlagDeathTest, RejectsGarbageWithDiagnostic)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(parseCountFlag("--jobs", "8x"),
                ::testing::ExitedWithCode(1),
                "--jobs needs a number, got '8x'");
    EXPECT_EXIT(parseCountFlag("--jobs", ""),
                ::testing::ExitedWithCode(1),
                "--jobs needs a number");
    EXPECT_EXIT(parseCountFlag("--jobs", "four"),
                ::testing::ExitedWithCode(1),
                "--jobs needs a number, got 'four'");
}

TEST(LogShardsFlag, AcceptsTheFullMaskRange)
{
    EXPECT_EQ(parseLogShardsFlag("--log-shards", "1"), 1u);
    EXPECT_EQ(parseLogShardsFlag("--log-shards", "4"), 4u);
    EXPECT_EQ(parseLogShardsFlag("--log-shards", "64"), 64u);
}

TEST(PositiveCountFlag, AcceptsAnyNonzeroCount)
{
    EXPECT_EQ(parsePositiveCountFlag("--threads", "1"), 1u);
    EXPECT_EQ(parsePositiveCountFlag("--bench-repeats", "5"), 5u);
    EXPECT_EQ(parsePositiveCountFlag("--threads", "0x40"), 64u);
}

TEST(PositiveCountFlagDeathTest, RejectsZeroAndGarbage)
{
    // 0 silently degenerates the run (no threads, no repeats), so it
    // is a hard error; garbage fails the strict number parse first.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(parsePositiveCountFlag("--threads", "0"),
                ::testing::ExitedWithCode(1),
                "--threads needs a count >= 1, got '0'");
    EXPECT_EXIT(parsePositiveCountFlag("--bench-repeats", "3x"),
                ::testing::ExitedWithCode(1),
                "--bench-repeats needs a number, got '3x'");
    EXPECT_EXIT(parsePositiveCountFlag("--bench-repeats", ""),
                ::testing::ExitedWithCode(1),
                "--bench-repeats needs a number");
}

TEST(LogShardsFlagDeathTest, RejectsZeroOverflowAndGarbage)
{
    // 0 shards is meaningless and 64 is the participation-mask
    // width; garbage must fail the strict number parse first.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(parseLogShardsFlag("--log-shards", "0"),
                ::testing::ExitedWithCode(1),
                "--log-shards needs a shard count in \\[1,64\\]");
    EXPECT_EXIT(parseLogShardsFlag("--log-shards", "65"),
                ::testing::ExitedWithCode(1),
                "--log-shards needs a shard count in \\[1,64\\]");
    EXPECT_EXIT(parseLogShardsFlag("--log-shards", "2q"),
                ::testing::ExitedWithCode(1),
                "--log-shards needs a number, got '2q'");
}

TEST(OpenUnitFlag, AcceptsInteriorValues)
{
    EXPECT_DOUBLE_EQ(parseOpenUnitFlag("--zipf-theta", "0.9"), 0.9);
    EXPECT_DOUBLE_EQ(parseOpenUnitFlag("--zipf-theta", "0.001"),
                     0.001);
    EXPECT_DOUBLE_EQ(parseOpenUnitFlag("--zipf-theta", ".5"), 0.5);
}

TEST(OpenUnitFlagDeathTest, RejectsBoundsAndGarbage)
{
    // The interval is open: theta = 0 silently degenerates Zipf to
    // uniform and theta = 1 is outside the distribution's validity
    // range, so both are hard errors, as is a half-parsed value.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(parseOpenUnitFlag("--zipf-theta", "0"),
                ::testing::ExitedWithCode(1),
                "--zipf-theta needs a value strictly inside \\(0,1\\)");
    EXPECT_EXIT(parseOpenUnitFlag("--zipf-theta", "1"),
                ::testing::ExitedWithCode(1),
                "--zipf-theta needs a value strictly inside \\(0,1\\)");
    EXPECT_EXIT(parseOpenUnitFlag("--zipf-theta", "1.5"),
                ::testing::ExitedWithCode(1),
                "--zipf-theta needs a value strictly inside \\(0,1\\)");
    EXPECT_EXIT(parseOpenUnitFlag("--zipf-theta", "-0.2"),
                ::testing::ExitedWithCode(1),
                "--zipf-theta needs a value strictly inside \\(0,1\\)");
    EXPECT_EXIT(parseOpenUnitFlag("--zipf-theta", "0.5x"),
                ::testing::ExitedWithCode(1),
                "--zipf-theta needs a number, got '0.5x'");
    EXPECT_EXIT(parseOpenUnitFlag("--zipf-theta", ""),
                ::testing::ExitedWithCode(1),
                "--zipf-theta needs a number");
}
