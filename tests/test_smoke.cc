/**
 * @file
 * End-to-end smoke tests: the SPS workload runs and verifies under
 * every persistence mode, with one and with several threads, and
 * survives a mid-run crash with recovery under the guaranteed modes.
 */

#include <gtest/gtest.h>

#include "workloads/driver.hh"

using namespace snf;
using namespace snf::workloads;

namespace
{

RunSpec
smokeSpec(PersistMode mode, std::uint32_t threads)
{
    RunSpec spec;
    spec.workload = "sps";
    spec.mode = mode;
    spec.params.threads = threads;
    spec.params.txPerThread = 100;
    spec.params.footprint = 512;
    spec.sys = SystemConfig::scaled(threads);
    return spec;
}

} // namespace

class SmokeAllModes
    : public ::testing::TestWithParam<PersistMode>
{
};

TEST_P(SmokeAllModes, SingleThreadRunsAndVerifies)
{
    auto outcome = runWorkload(smokeSpec(GetParam(), 1));
    EXPECT_TRUE(outcome.verified) << outcome.verifyMessage;
    EXPECT_EQ(outcome.stats.committedTx, 100u);
    EXPECT_GT(outcome.stats.cycles, 0u);
    EXPECT_GT(outcome.stats.instr.total, 0u);
}

TEST_P(SmokeAllModes, FourThreadsRunAndVerify)
{
    auto outcome = runWorkload(smokeSpec(GetParam(), 4));
    EXPECT_TRUE(outcome.verified) << outcome.verifyMessage;
    EXPECT_EQ(outcome.stats.committedTx, 400u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SmokeAllModes, ::testing::ValuesIn(kAllModes),
    [](const auto &info) {
        std::string n = persistModeName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(SmokeCrash, FwbRecoversAfterMidRunCrash)
{
    RunSpec spec = smokeSpec(PersistMode::Fwb, 2);
    spec.sys.persist.crashJournal = true;
    spec.params.txPerThread = 4000;
    spec.crashAt = 100000;
    auto outcome = runWorkload(spec);
    ASSERT_TRUE(outcome.crashed) << "crash tick never reached";
    EXPECT_TRUE(outcome.verified) << outcome.verifyMessage;
    EXPECT_GT(outcome.recovery.validRecords, 0u);
}

TEST(SmokeOrdering, HardwareModesKeepLogBeforeData)
{
    for (PersistMode m : {PersistMode::Hwl, PersistMode::Fwb}) {
        auto outcome = runWorkload(smokeSpec(m, 2));
        EXPECT_EQ(outcome.stats.orderViolations, 0u)
            << persistModeName(m);
    }
}

TEST(SmokeFwb, NoOverwriteHazards)
{
    auto outcome = runWorkload(smokeSpec(PersistMode::Fwb, 1));
    EXPECT_EQ(outcome.stats.overwriteHazards, 0u);
}
