/**
 * @file
 * Unit tests for the sparse backing store and its crash journal.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"

using namespace snf;
using namespace snf::mem;

TEST(BackingStore, ZeroFilledByDefault)
{
    BackingStore bs(0x1000, 1 << 20);
    std::uint8_t buf[16] = {0xff};
    bs.read(0x2000, sizeof(buf), buf);
    for (auto b : buf)
        EXPECT_EQ(b, 0);
}

TEST(BackingStore, ReadBackWrites)
{
    BackingStore bs(0, 1 << 20);
    const char msg[] = "hello, nvram";
    bs.write(123, sizeof(msg), msg);
    char out[sizeof(msg)] = {};
    bs.read(123, sizeof(msg), out);
    EXPECT_STREQ(out, msg);
}

TEST(BackingStore, CrossPageAccess)
{
    BackingStore bs(0, 1 << 20);
    std::vector<std::uint8_t> data(10000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    bs.write(4000, data.size(), data.data()); // spans 3+ pages
    std::vector<std::uint8_t> out(data.size());
    bs.read(4000, out.size(), out.data());
    EXPECT_EQ(out, data);
}

TEST(BackingStore, Read64Write64)
{
    BackingStore bs(0x100000000ULL, 1 << 20);
    bs.write64(0x100000040ULL, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(bs.read64(0x100000040ULL), 0xdeadbeefcafef00dULL);
}

TEST(BackingStore, ContainsChecksBounds)
{
    BackingStore bs(0x1000, 0x1000);
    EXPECT_TRUE(bs.contains(0x1000, 1));
    EXPECT_TRUE(bs.contains(0x1fff, 1));
    EXPECT_FALSE(bs.contains(0x1fff, 2));
    EXPECT_FALSE(bs.contains(0xfff, 1));
}

TEST(BackingStoreJournal, SnapshotExcludesLaterWrites)
{
    BackingStore bs(0, 1 << 20);
    bs.write64(0, 1, 0);
    bs.enableJournal();
    bs.write64(8, 2, 100);
    bs.write64(16, 3, 200);
    bs.write64(8, 4, 300); // overwrites the tick-100 value

    BackingStore snap = bs.snapshotAt(250);
    EXPECT_EQ(snap.read64(0), 1u);  // pre-journal base
    EXPECT_EQ(snap.read64(8), 2u);  // tick-100 write visible
    EXPECT_EQ(snap.read64(16), 3u); // tick-200 write visible
    EXPECT_EQ(bs.read64(8), 4u);    // live store has the newest
}

TEST(BackingStoreJournal, SnapshotAtZeroIsBaseImage)
{
    BackingStore bs(0, 1 << 20);
    bs.write64(0, 42, 0);
    bs.enableJournal();
    bs.write64(0, 43, 10);
    BackingStore snap = bs.snapshotAt(5);
    EXPECT_EQ(snap.read64(0), 42u);
}

TEST(BackingStoreJournal, OrderedReplayOfSameAddress)
{
    BackingStore bs(0, 1 << 20);
    bs.enableJournal();
    for (std::uint64_t t = 1; t <= 10; ++t)
        bs.write64(64, t, t * 10);
    for (std::uint64_t t = 1; t <= 10; ++t)
        EXPECT_EQ(bs.snapshotAt(t * 10).read64(64), t);
}

TEST(BackingStoreJournal, JournalSizeCounts)
{
    BackingStore bs(0, 1 << 20);
    bs.enableJournal();
    EXPECT_EQ(bs.journalSize(), 0u);
    bs.write64(0, 1, 1);
    bs.write64(8, 2, 2);
    EXPECT_EQ(bs.journalSize(), 2u);
}

TEST(BackingStoreJournal, OutOfOrderCompletionReplaysByDoneTick)
{
    // Writes can complete out of issue order (bank conflicts, read
    // priority). The device ends up holding the value of the
    // *latest-completing* write, so a snapshot must replay by
    // completion tick, not journal insertion order.
    BackingStore bs(0, 1 << 20);
    bs.enableJournal();
    bs.write64(128, 0xAA, 50); // issued first, completes last
    bs.write64(128, 0xBB, 20); // issued second, completes first
    EXPECT_EQ(bs.snapshotAt(10).read64(128), 0u);
    EXPECT_EQ(bs.snapshotAt(20).read64(128), 0xBBu);
    EXPECT_EQ(bs.snapshotAt(50).read64(128), 0xAAu);
    EXPECT_EQ(bs.snapshotAt(1000).read64(128), 0xAAu);
}

TEST(BackingStore, FirstDifferenceFindsLowestMismatch)
{
    BackingStore a(0, 1 << 20);
    BackingStore b(0, 1 << 20);
    EXPECT_FALSE(a.firstDifference(b, 0, 1 << 20).has_value());

    // A page present in one store but all-zero matches an absent one.
    a.write64(4096, 0, 0);
    EXPECT_FALSE(a.firstDifference(b, 0, 1 << 20).has_value());

    b.write64(8192 + 16, 7, 0);
    a.write64(65536, 9, 0);
    auto diff = a.firstDifference(b, 0, 1 << 20);
    ASSERT_TRUE(diff.has_value());
    EXPECT_EQ(*diff, 8192u + 16u);

    // Range can exclude the mismatch.
    EXPECT_FALSE(a.firstDifference(b, 0, 8192).has_value());
    auto d2 = a.firstDifference(b, 16384, (1 << 20) - 16384);
    ASSERT_TRUE(d2.has_value());
    EXPECT_EQ(*d2, 65536u);
}
