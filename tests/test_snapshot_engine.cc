/**
 * @file
 * Property tests of the checkpointed copy-on-write snapshot engine
 * (the `perf` ctest label): the checkpointed/COW `snapshotAt` must be
 * byte-identical to a naive full-replay reference at every sampled
 * tick, COW images must never alias their parent or siblings, and the
 * monotone Cursor must agree with snapshotAt along an ascending tick
 * walk.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/backing_store.hh"
#include "sim/rng.hh"

using namespace snf;
using namespace snf::mem;

namespace
{

constexpr Addr kBase = 0x100000;
constexpr std::uint64_t kSize = 1 << 20;

/**
 * Build two identically journaled stores — one with checkpoints every
 * @p interval entries, one naive (interval 0, full replay) — from the
 * same deterministic write stream. Completion ticks are issued out of
 * order in bursts, like a real memory bus.
 */
struct EnginePair
{
    BackingStore ckpt{kBase, kSize};
    BackingStore naive{kBase, kSize};
    std::vector<Tick> doneTicks; // every journaled completion tick
    Tick lastTick = 0;

    EnginePair(std::size_t interval, std::uint64_t entries,
               std::uint64_t seed)
    {
        sim::Rng rng(seed);
        // Pre-journal contents become the tick-0 baseline.
        for (int i = 0; i < 32; ++i) {
            std::uint64_t v = rng.next();
            Addr a = kBase + (rng.next() % (kSize - 8)) / 8 * 8;
            ckpt.write(a, sizeof(v), &v);
            naive.write(a, sizeof(v), &v);
        }
        ckpt.setCheckpointInterval(interval);
        naive.setCheckpointInterval(0);
        ckpt.enableJournal();
        naive.enableJournal();

        Tick now = 0;
        for (std::uint64_t i = 0; i < entries; ++i) {
            // Bursts of writes completing around a common instant,
            // deliberately out of issue order.
            now += rng.next() % 7;
            Tick done = now + rng.next() % 5;
            std::uint8_t buf[48];
            std::uint64_t len = 1 + rng.next() % sizeof(buf);
            for (std::uint64_t b = 0; b < len; ++b)
                buf[b] = static_cast<std::uint8_t>(rng.next());
            Addr a = kBase + rng.next() % (kSize - sizeof(buf));
            ckpt.write(a, len, buf, done);
            naive.write(a, len, buf, done);
            doneTicks.push_back(done);
            lastTick = std::max(lastTick, done);
        }
    }
};

} // namespace

TEST(SnapshotEngine, CheckpointedMatchesNaiveAtSampledTicks)
{
    constexpr std::size_t kInterval = 64;
    EnginePair eng(kInterval, 1000, 42);

    // Checkpoint-boundary-straddling ticks: the completion ticks in
    // sorted order; checkpoints land every kInterval entries, so the
    // ticks at sorted positions K-1, K, K+1 (for each multiple K)
    // straddle a materialized checkpoint.
    std::vector<Tick> sorted = eng.doneTicks;
    std::sort(sorted.begin(), sorted.end());
    std::vector<Tick> samples{0, 1, eng.lastTick,
                              eng.lastTick + 1000};
    for (std::size_t k = kInterval; k < sorted.size();
         k += kInterval) {
        samples.push_back(sorted[k - 1]);
        samples.push_back(sorted[k]);
        if (k + 1 < sorted.size())
            samples.push_back(sorted[k + 1]);
    }
    sim::Rng rng(7);
    for (int i = 0; i < 40; ++i)
        samples.push_back(rng.next() % (eng.lastTick + 2));

    eng.ckpt.buildSnapshotIndex();
    ASSERT_GT(eng.ckpt.checkpointCount(), 0u)
        << "test must actually exercise checkpoints";
    EXPECT_EQ(eng.naive.checkpointCount(), 0u);

    for (Tick t : samples) {
        BackingStore a = eng.ckpt.snapshotAt(t);
        BackingStore b = eng.naive.snapshotAt(t);
        EXPECT_EQ(a.firstDifference(b, kBase, kSize), std::nullopt)
            << "checkpointed and naive snapshots diverge at tick "
            << t;
    }
}

TEST(SnapshotEngine, CursorMatchesSnapshotAtAlongAscendingWalk)
{
    EnginePair eng(32, 600, 99);

    std::vector<Tick> walk{0};
    sim::Rng rng(5);
    for (int i = 0; i < 50; ++i)
        walk.push_back(rng.next() % (eng.lastTick + 2));
    walk.push_back(eng.lastTick);
    std::sort(walk.begin(), walk.end());

    BackingStore::Cursor cursor(eng.ckpt);
    for (Tick t : walk) {
        BackingStore inc = cursor.imageAt(t);
        BackingStore ref = eng.naive.snapshotAt(t);
        EXPECT_EQ(inc.firstDifference(ref, kBase, kSize),
                  std::nullopt)
            << "cursor image diverges from naive replay at tick "
            << t;
    }
}

TEST(SnapshotEngine, SnapshotMutationNeverLeaksIntoParentOrSiblings)
{
    EnginePair eng(16, 200, 7);
    Tick mid = eng.lastTick / 2;

    BackingStore sibling = eng.ckpt.snapshotAt(mid);
    BackingStore victim = eng.ckpt.snapshotAt(mid);
    ASSERT_EQ(victim.firstDifference(sibling, kBase, kSize),
              std::nullopt);

    // Mutate every page of one snapshot; the sibling (same tick) and
    // the parent's future snapshots must not observe any of it.
    sim::Rng rng(3);
    for (Addr a = kBase; a < kBase + kSize; a += 4096) {
        std::uint64_t v = rng.next() | 1;
        victim.write64(a, v);
        EXPECT_EQ(victim.read64(a), v);
    }
    EXPECT_EQ(sibling.firstDifference(eng.naive.snapshotAt(mid),
                                      kBase, kSize),
              std::nullopt)
        << "sibling snapshot observed a write to another snapshot";
    EXPECT_EQ(eng.ckpt.snapshotAt(mid).firstDifference(sibling, kBase,
                                                       kSize),
              std::nullopt)
        << "parent store observed a write to a snapshot";

    // And the reverse: mutating the parent must not change images
    // already taken (checkpoint sharing included).
    std::uint64_t marker = 0xfeedfacecafebeefULL;
    BackingStore before = eng.ckpt.snapshotAt(mid);
    eng.ckpt.write64(kBase + 512, marker, eng.lastTick + 10);
    eng.naive.write64(kBase + 512, marker, eng.lastTick + 10);
    EXPECT_EQ(before.firstDifference(sibling, kBase, kSize),
              std::nullopt)
        << "parent mutation leaked into an existing snapshot";
}

TEST(SnapshotEngine, InlineAndHeapJournalPayloadsRoundTrip)
{
    BackingStore bs(kBase, kSize);
    bs.enableJournal();

    // <= 32 bytes stores inline, > 32 bytes on the heap; both must
    // replay byte-exactly (and survive the journal's vector growth).
    std::vector<std::uint8_t> small(32), large(200);
    for (std::size_t i = 0; i < small.size(); ++i)
        small[i] = static_cast<std::uint8_t>(0xa0 + i);
    for (std::size_t i = 0; i < large.size(); ++i)
        large[i] = static_cast<std::uint8_t>(i * 3 + 1);
    bs.write(kBase + 64, small.size(), small.data(), 10);
    bs.write(kBase + 4096 - 50, large.size(), large.data(), 20);
    for (int i = 0; i < 1000; ++i) // force reallocations
        bs.write64(kBase + 8 * i, i, 30 + i);

    BackingStore snap = bs.snapshotAt(25);
    std::vector<std::uint8_t> out(large.size());
    snap.read(kBase + 64, small.size(), out.data());
    EXPECT_TRUE(std::equal(small.begin(), small.end(), out.begin()));
    snap.read(kBase + 4096 - 50, large.size(), out.data());
    EXPECT_EQ(out, large);
    // Tick 15: the large write (done 20) must not be visible yet.
    BackingStore early = bs.snapshotAt(15);
    early.read(kBase + 4096 - 50, large.size(), out.data());
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], 0) << "at offset " << i;
}

TEST(SnapshotEngine, ReplayCountersShrinkWithCheckpoints)
{
    EnginePair eng(64, 1000, 11);
    eng.ckpt.buildSnapshotIndex();
    eng.naive.buildSnapshotIndex();

    std::uint64_t ck0 = eng.ckpt.entriesReplayed();
    std::uint64_t nv0 = eng.naive.entriesReplayed();
    Tick late = eng.lastTick - 1;
    (void)eng.ckpt.snapshotAt(late);
    (void)eng.naive.snapshotAt(late);
    std::uint64_t ckDelta = eng.ckpt.entriesReplayed() - ck0;
    std::uint64_t nvDelta = eng.naive.entriesReplayed() - nv0;
    EXPECT_LT(ckDelta, nvDelta)
        << "a late-tick snapshot should replay only the delta past "
           "the nearest checkpoint";
    EXPECT_LE(ckDelta, eng.ckpt.checkpointInterval());
}
