/**
 * @file
 * Tests for the Section III-F extensions: distributed per-thread
 * logs (partitioned regions, per-core routing, multi-partition
 * recovery) and the NVRAM wear/lifetime accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/system.hh"
#include "persist/recovery.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::workloads;

namespace
{

SystemConfig
distCfg(std::uint32_t cores, bool journal = false)
{
    SystemConfig cfg = SystemConfig::scaled(cores);
    cfg.persist.distributedLogs = true;
    cfg.persist.crashJournal = journal;
    return cfg;
}

sim::Co<void>
writerThread(Thread &t, Addr base, int iters)
{
    Addr mine = base + t.id() * 64;
    for (int i = 0; i < iters; ++i) {
        co_await t.txBegin();
        co_await t.store64(mine, i + 1);
        co_await t.txCommit();
    }
}

} // namespace

TEST(DistributedLogs, OnePartitionPerCore)
{
    System sys(distCfg(4), PersistMode::Fwb);
    EXPECT_EQ(sys.logPartitionCount(), 4u);
    EXPECT_EQ(sys.config().map.logPartitions, 4u);
}

TEST(DistributedLogs, CentralizedByDefault)
{
    System sys(SystemConfig::scaled(4), PersistMode::Fwb);
    EXPECT_EQ(sys.logPartitionCount(), 1u);
}

TEST(DistributedLogs, SoftwareModesStayCentralized)
{
    System sys(distCfg(4), PersistMode::UndoClwb);
    EXPECT_EQ(sys.logPartitionCount(), 1u);
}

TEST(DistributedLogs, RecordsRouteByCore)
{
    System sys(distCfg(2), PersistMode::Fwb);
    Addr base = sys.heap().alloc(256, 64);
    for (CoreId c = 0; c < 2; ++c) {
        sys.spawn(c, [&](Thread &t) {
            return writerThread(t, base, 10);
        });
    }
    sys.run();
    // Each core appended its update + commit records to its own
    // partition: 20 records each.
    EXPECT_EQ(sys.logPartition(0).appends.value(), 20u);
    EXPECT_EQ(sys.logPartition(1).appends.value(), 20u);
}

TEST(DistributedLogs, RecoverySpansAllPartitions)
{
    SystemConfig cfg = distCfg(2, /*journal=*/true);
    System sys(cfg, PersistMode::Fwb);
    Addr base = sys.heap().alloc(256, 64);
    for (CoreId c = 0; c < 2; ++c) {
        sys.spawn(c, [&](Thread &t) {
            return writerThread(t, base, 5);
        });
    }
    Tick end = sys.run();
    mem::BackingStore snap = sys.crashSnapshot(end);
    // Note: recovery needs the SYSTEM's address map, which carries
    // the partition count chosen at construction.
    auto report = persist::Recovery::run(snap, sys.config().map);
    EXPECT_EQ(report.committedTxns, 10u);
    EXPECT_EQ(snap.read64(base), 5u);
    EXPECT_EQ(snap.read64(base + 64), 5u);
}

TEST(DistributedLogs, WorkloadsVerifyUnderDistributedFwb)
{
    for (const auto &wl : {"hash", "sps", "tpcc"}) {
        RunSpec spec;
        spec.workload = wl;
        spec.mode = PersistMode::Fwb;
        spec.params.threads = 4;
        spec.params.txPerThread = 80;
        spec.params.footprint = 512;
        spec.sys = distCfg(4);
        auto outcome = runWorkload(spec);
        EXPECT_TRUE(outcome.verified)
            << wl << ": " << outcome.verifyMessage;
        EXPECT_EQ(outcome.stats.orderViolations, 0u) << wl;
        EXPECT_EQ(outcome.stats.overwriteHazards, 0u) << wl;
    }
}

TEST(DistributedLogs, CrashRecoveryUnderDistributedFwb)
{
    // Distributed logs require thread-private persistent data (the
    // paper's one-transaction-stream-per-thread model, Figure 4):
    // without a global LSN, committed writes to SHARED addresses
    // from different partitions cannot be ordered at recovery. The
    // partitioned workloads satisfy this; vacation/ycsb (shared
    // writes) must use the centralized log.
    for (const auto &wl : {"tpcc", "hash", "echo"}) {
        RunSpec spec;
        spec.workload = wl;
        spec.mode = PersistMode::Fwb;
        spec.params.threads = 2;
        spec.params.txPerThread = 600;
        spec.params.footprint = 256;
        spec.sys = distCfg(2, /*journal=*/true);
        spec.crashAt = 70000;
        auto outcome = runWorkload(spec);
        EXPECT_TRUE(outcome.verified)
            << wl << ": " << outcome.verifyMessage;
    }
}

TEST(DistributedLogs, NoThreadIdNeededPerRecord)
{
    // With per-thread logs the paper notes records need no thread id;
    // our records keep the field, but every record in partition p
    // must carry thread p (sanity on the routing).
    SystemConfig cfg = distCfg(2, /*journal=*/true);
    System sys(cfg, PersistMode::Fwb);
    Addr base = sys.heap().alloc(256, 64);
    for (CoreId c = 0; c < 2; ++c) {
        sys.spawn(c, [&](Thread &t) {
            return writerThread(t, base, 3);
        });
    }
    Tick end = sys.run();
    mem::BackingStore snap = sys.crashSnapshot(end);
    std::uint64_t part_bytes = cfg.map.logSize / 2;
    for (std::uint32_t p = 0; p < 2; ++p) {
        Addr slot0 = cfg.map.logBase() + p * part_bytes +
                     persist::LogRegion::kHeaderBytes;
        std::uint8_t img[persist::LogRecord::kSlotBytes];
        snap.read(slot0, sizeof(img), img);
        bool torn = false;
        auto rec = persist::LogRecord::deserialize(img, torn);
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->thread, p);
    }
}

// ----------------------------- wear ------------------------------

TEST(Wear, ReportCountsRowWrites)
{
    MemDeviceConfig cfg;
    cfg.sizeBytes = 1 << 24;
    mem::MemDevice dev("w", cfg, 0);
    std::uint8_t buf[64] = {};
    for (int i = 0; i < 10; ++i)
        dev.access(true, 0, 64, buf, nullptr, i * 1000);
    dev.access(true, 4096, 64, buf, nullptr, 99000);
    auto r = dev.wearReport();
    EXPECT_EQ(r.totalWrites, 11u);
    EXPECT_EQ(r.rowsTouched, 2u);
    EXPECT_EQ(r.hottestRowWrites, 10u);
    EXPECT_NEAR(r.meanWritesPerTouchedRow, 5.5, 1e-9);
}

TEST(Wear, LifetimeProjectionMatchesPaperArithmetic)
{
    // Paper Section III-F: a log cell overwritten every
    // 64K x 200 ns wears out a 1e8-endurance cell in ~15 days.
    mem::MemDevice::WearReport r;
    r.hottestRowWrites = 1000;
    // 1000 writes over 64K x 200ns x 1000 elapsed = one write per
    // 64K x 200 ns = 32.768 ms per 1000 writes at 2.5 GHz:
    Tick elapsed = static_cast<Tick>(1000.0 * 65536 * 200 * 2.5);
    double secs = r.hottestRowLifetimeSeconds(100000000, elapsed, 2.5);
    double days = secs / 86400.0;
    EXPECT_NEAR(days, 15.2, 0.5);
}

TEST(Wear, InfiniteLifetimeWithoutWrites)
{
    mem::MemDevice::WearReport r;
    EXPECT_TRUE(std::isinf(
        r.hottestRowLifetimeSeconds(100000000, 1000, 2.5)));
}

TEST(Wear, LogRegionWearsUniformly)
{
    // The circular log's writes spread across its rows: after a few
    // wraps the hottest log row is within ~2x of the mean.
    RunSpec spec;
    spec.workload = "sps";
    spec.mode = PersistMode::Fwb;
    spec.params.threads = 1;
    spec.params.txPerThread = 3000;
    spec.params.footprint = 1024;
    spec.sys = SystemConfig::scaled(1);
    spec.sys.persist.logBytes = 32 * 1024;
    spec.sys.map.logSize = 32 * 1024;
    auto outcome = runWorkload(spec);
    ASSERT_GT(outcome.stats.logWraps, 1u);
    (void)outcome;
    SUCCEED();
}
