/**
 * @file
 * Unit tests for configuration presets, persistence-mode predicates,
 * the FWB period derivation, and the energy model.
 */

#include <gtest/gtest.h>

#include "core/system_config.hh"
#include "energy/energy_model.hh"
#include "mem/memory_system.hh"
#include "persist/fwb_engine.hh"

using namespace snf;

TEST(PersistMode, NamesAreUnique)
{
    std::set<std::string> names;
    for (PersistMode m : kAllModes)
        EXPECT_TRUE(names.insert(persistModeName(m)).second);
    EXPECT_EQ(names.size(), 9u);
}

TEST(PersistMode, HardwareVsSoftwarePartition)
{
    for (PersistMode m : kAllModes) {
        // No mode is both hardware- and software-logging.
        EXPECT_FALSE(isHardwareLogging(m) && isSoftwareLogging(m))
            << persistModeName(m);
    }
    EXPECT_TRUE(isHardwareLogging(PersistMode::Fwb));
    EXPECT_TRUE(isSoftwareLogging(PersistMode::UndoClwb));
    EXPECT_FALSE(isHardwareLogging(PersistMode::NonPers));
    EXPECT_FALSE(isSoftwareLogging(PersistMode::NonPers));
}

TEST(PersistMode, ClwbUsers)
{
    EXPECT_TRUE(usesCommitClwb(PersistMode::RedoClwb));
    EXPECT_TRUE(usesCommitClwb(PersistMode::UndoClwb));
    EXPECT_TRUE(usesCommitClwb(PersistMode::Hwl));
    EXPECT_FALSE(usesCommitClwb(PersistMode::Fwb));
    EXPECT_FALSE(usesCommitClwb(PersistMode::UnsafeRedo));
}

TEST(SystemConfig, PaperPresetMatchesTableII)
{
    SystemConfig c = SystemConfig::paper();
    EXPECT_EQ(c.numCores, 4u);
    EXPECT_DOUBLE_EQ(c.clockGhz, 2.5);
    EXPECT_EQ(c.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(c.l1.ways, 8u);
    EXPECT_EQ(c.l1.latency, 4u); // 1.6 ns
    EXPECT_EQ(c.l2.sizeBytes, 8u * 1024 * 1024);
    EXPECT_EQ(c.l2.ways, 16u);
    EXPECT_EQ(c.l2.latency, 11u); // 4.4 ns
    EXPECT_EQ(c.nvram.banks, 8u);
    EXPECT_EQ(c.nvram.rowBytes, 2048u);
    EXPECT_EQ(c.nvram.rowHitLat, 90u);        // 36 ns
    EXPECT_EQ(c.nvram.readConflictLat, 250u); // 100 ns
    EXPECT_EQ(c.nvram.writeConflictLat, 750u); // 300 ns
    EXPECT_DOUBLE_EQ(c.nvram.arrayWritePjBit, 16.82);
    EXPECT_EQ(c.persist.logBytes, 4ULL << 20);
    EXPECT_EQ(c.persist.logBufferEntries, 15u);
}

TEST(SystemConfig, ScaledShrinksCapacityKeepsTiming)
{
    SystemConfig p = SystemConfig::paper();
    SystemConfig s = SystemConfig::scaled();
    EXPECT_LT(s.l1.sizeBytes, p.l1.sizeBytes);
    EXPECT_EQ(p.l2.sizeBytes / s.l2.sizeBytes, 16u);
    EXPECT_EQ(p.persist.logBytes / s.persist.logBytes, 16u);
    // Latencies and bandwidths are untouched: only capacity scales.
    EXPECT_EQ(p.l1.latency, s.l1.latency);
    EXPECT_EQ(p.l2.latency, s.l2.latency);
    EXPECT_EQ(p.nvram.writeConflictLat, s.nvram.writeConflictLat);
    EXPECT_EQ(p.nvram.banks, s.nvram.banks);
}

TEST(SystemConfig, GeometryHelpers)
{
    CacheConfig c;
    c.sizeBytes = 32 * 1024;
    c.ways = 8;
    c.lineBytes = 64;
    EXPECT_EQ(c.numLines(), 512u);
    EXPECT_EQ(c.numSets(), 64u);
}

TEST(AddressMap, RangesDisjoint)
{
    AddressMap map;
    EXPECT_TRUE(map.isDram(map.dramBase));
    EXPECT_FALSE(map.isNvram(map.dramBase));
    EXPECT_TRUE(map.isNvram(map.nvramBase));
    EXPECT_FALSE(map.isDram(map.nvramBase));
    EXPECT_EQ(map.logBase(), map.nvramBase);
    EXPECT_EQ(map.heapBase(), map.nvramBase + map.logSize);
}

TEST(FwbEngine, PeriodScalesLinearlyWithLogSize)
{
    SystemConfig c = SystemConfig::scaled();
    c.persist.logBytes = 256 * 1024;
    c.map.logSize = c.persist.logBytes;
    Tick p1 = persist::FwbEngine::derivePeriod(c);
    c.persist.logBytes = 1024 * 1024;
    c.map.logSize = c.persist.logBytes;
    Tick p4 = persist::FwbEngine::derivePeriod(c);
    EXPECT_NEAR(static_cast<double>(p4) / static_cast<double>(p1),
                4.0, 0.1);
}

TEST(EnergyModel, SumsDeviceAndCoreEnergy)
{
    mem::MemorySystem ms(SystemConfig::scaled(1));
    Addr nv = ms.config().map.nvramBase + (4 << 20);
    std::uint64_t v = 1;
    ms.store(0, nv, 8, &v, 0);
    ms.flushAllDirty(1000);
    auto e = energy::EnergyModel::compute(ms, 1000);
    EXPECT_GT(e.nvramWritePj, 0.0);
    EXPECT_GT(e.corePj, 0.0);
    EXPECT_GT(e.l1Pj, 0.0);
    EXPECT_DOUBLE_EQ(e.memoryDynamicPj(),
                     e.nvramReadPj + e.nvramWritePj + e.dramPj);
    EXPECT_DOUBLE_EQ(e.totalPj(),
                     e.memoryDynamicPj() + e.processorDynamicPj());
}

TEST(EnergyModel, CoefficientsApply)
{
    mem::MemorySystem ms(SystemConfig::scaled(1));
    energy::EnergyCoefficients coeff;
    coeff.perInstructionPj = 1000.0;
    auto e = energy::EnergyModel::compute(ms, 10, coeff);
    EXPECT_DOUBLE_EQ(e.corePj, 10000.0);
}
