/**
 * @file
 * Unit tests for the CPU layer: thread-context timing helpers (store
 * buffer, fences, retire width), the earliest-thread-first scheduler
 * (ordering, determinism, crash stop), and event-queue interleaving.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/system.hh"
#include "cpu/scheduler.hh"
#include "cpu/thread_context.hh"
#include "sim/rng.hh"

using namespace snf;
using namespace snf::cpu;

TEST(ThreadContext, RetireComputeUsesIssueWidth)
{
    ThreadContext tc(0, /*width=*/4, /*sb=*/8);
    tc.retireCompute(8);
    EXPECT_EQ(tc.localTime, 2u);
    tc.retireCompute(1);
    EXPECT_EQ(tc.localTime, 3u); // rounds up
}

TEST(ThreadContext, StoreBufferAbsorbsUntilFull)
{
    ThreadContext tc(0, 4, /*sb=*/2);
    tc.localTime = 10;
    tc.noteStoreDrain(100);
    tc.noteStoreDrain(200);
    EXPECT_EQ(tc.localTime, 10u); // buffered, no stall
    tc.noteStoreDrain(300);       // full: stall to oldest drain
    EXPECT_EQ(tc.localTime, 100u);
}

TEST(ThreadContext, DrainedEntriesRetireSilently)
{
    ThreadContext tc(0, 4, 2);
    tc.noteStoreDrain(5);
    tc.noteStoreDrain(6);
    tc.localTime = 50; // both entries have drained by now
    tc.noteStoreDrain(60);
    EXPECT_EQ(tc.localTime, 50u); // no stall
}

TEST(ThreadContext, FenceWaitsForStoresAndPersists)
{
    ThreadContext tc(0, 4, 8);
    tc.localTime = 10;
    tc.noteStoreDrain(500);
    tc.notePendingPersist(900);
    tc.drainForFence();
    EXPECT_EQ(tc.localTime, 900u);
    // A second fence has nothing left to wait for.
    tc.drainForFence();
    EXPECT_EQ(tc.localTime, 900u);
}

namespace
{

struct CountOp : PendingOp
{
    std::vector<int> *order;
    int id;
    ThreadContext *tc;
    Tick advance;

    void
    execute() override
    {
        order->push_back(id);
        tc->localTime += advance;
    }
};

// A coroutine that parks `ops` operations, one at a time.
sim::Co<void>
opLoop(ThreadContext *tc, CountOp *op, int times)
{
    struct Await
    {
        ThreadContext *tc;
        CountOp *op;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h) noexcept
        {
            tc->pending = op;
            tc->resumePoint = h;
        }

        void await_resume() const noexcept {}
    };
    for (int i = 0; i < times; ++i)
        co_await Await{tc, op};
}

} // namespace

TEST(Scheduler, ExecutesEarliestThreadFirst)
{
    sim::EventQueue evq;
    Scheduler sched(evq);
    ThreadContext a(0, 4, 8), b(1, 4, 8);
    std::vector<int> order;

    CountOp opA{};
    opA.order = &order;
    opA.id = 0;
    opA.tc = &a;
    opA.advance = 100; // thread a is slow
    CountOp opB{};
    opB.order = &order;
    opB.id = 1;
    opB.tc = &b;
    opB.advance = 30; // thread b is fast

    sim::Co<void> ca = opLoop(&a, &opA, 2);
    sim::Co<void> cb = opLoop(&b, &opB, 6);
    a.rootHandle = ca.raw();
    b.rootHandle = cb.raw();
    sched.addThread(&a);
    sched.addThread(&b);
    Tick end = sched.run();

    EXPECT_TRUE(sched.allFinished());
    EXPECT_EQ(end, 200u);
    // b at times 0,30,60,90 runs before a's second op at 100, etc.
    std::vector<int> expected{0, 1, 1, 1, 1, 0, 1, 1};
    EXPECT_EQ(order, expected);
}

TEST(Scheduler, StopsAtCrashTick)
{
    sim::EventQueue evq;
    Scheduler sched(evq);
    ThreadContext a(0, 4, 8);
    std::vector<int> order;
    CountOp op{};
    op.order = &order;
    op.id = 0;
    op.tc = &a;
    op.advance = 50;
    sim::Co<void> ca = opLoop(&a, &op, 100);
    a.rootHandle = ca.raw();
    sched.addThread(&a);
    sched.run(/*stopAt=*/175);
    EXPECT_FALSE(sched.allFinished());
    // Ops at local times 0,50,100,150 executed; 200 >= 175 stops.
    EXPECT_EQ(order.size(), 4u);
}

TEST(Scheduler, DrainsEventsBeforeThreadSteps)
{
    sim::EventQueue evq;
    Scheduler sched(evq);
    ThreadContext a(0, 4, 8);
    std::vector<int> order;
    CountOp op{};
    op.order = &order;
    op.id = 7;
    op.tc = &a;
    op.advance = 100;
    std::vector<Tick> event_ticks;
    evq.schedule(150, [&](Tick when) { event_ticks.push_back(when); });
    sim::Co<void> ca = opLoop(&a, &op, 3);
    a.rootHandle = ca.raw();
    sched.addThread(&a);
    sched.run();
    // The event fired between the thread's 100-tick and 200-tick ops.
    ASSERT_EQ(event_ticks.size(), 1u);
    EXPECT_EQ(event_ticks[0], 150u);
}

TEST(Scheduler, DeterministicAcrossRuns)
{
    auto run_once = [] {
        SystemConfig cfg = SystemConfig::scaled(4);
        System sys(cfg, PersistMode::Fwb);
        Addr a = sys.heap().alloc(4096, 64);
        for (CoreId c = 0; c < 4; ++c) {
            sys.spawn(c, [&, c](Thread &t) -> sim::Co<void> {
                return [](Thread &t, Addr base,
                          CoreId core) -> sim::Co<void> {
                    sim::Rng rng(core + 1);
                    for (int i = 0; i < 100; ++i) {
                        co_await t.txBegin();
                        Addr slot =
                            base + (rng.below(64) + core * 64) * 8;
                        std::uint64_t v =
                            co_await t.load64(slot);
                        co_await t.store64(slot, v + 1);
                        co_await t.txCommit();
                    }
                }(t, a, c);
            });
        }
        return sys.run();
    };
    Tick t1 = run_once();
    Tick t2 = run_once();
    EXPECT_EQ(t1, t2);
}

TEST(InstructionCounts, AccumulateAcrossClasses)
{
    InstructionCounts a, b;
    a.total = 10;
    a.loads = 3;
    b.total = 5;
    b.stores = 2;
    a += b;
    EXPECT_EQ(a.total, 15u);
    EXPECT_EQ(a.loads, 3u);
    EXPECT_EQ(a.stores, 2u);
}
