/**
 * @file
 * Tests for lifelab: the persistent dual-bank bad-line remap table
 * (roundtrip, update atomicity at every interior crash point,
 * corruption detection), MemDevice line translation, the online log
 * scrubber (single-bit repair, repeat-offender promotion, remap-bank
 * redundancy restoration), the abort-retry livelock guard, recovery
 * re-entrancy (truncation-flag resume protocol), and the
 * multi-generation lifecycle soak including its I9 cross-generation
 * durability check and the sabotage self-test.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crashlab/lifecycle.hh"
#include "mem/backing_store.hh"
#include "mem/mem_device.hh"
#include "mem/remap_table.hh"
#include "persist/log_record.hh"
#include "persist/log_region.hh"
#include "persist/log_scrubber.hh"
#include "persist/recovery.hh"
#include "persist/txn_tracker.hh"

using namespace snf;
using namespace snf::persist;

namespace
{

// Remap-region geometry shared by the table-level tests: two 1 KB
// banks ((1024-64)/16 = 60 entries) over a 64-line spare area.
constexpr Addr kRemapBase = 0x1000;
constexpr std::uint64_t kRemapSize = 2048;
constexpr Addr kSpareBase = 0x2000;
constexpr std::uint64_t kSpareSize = 4096;

/** A 64-byte-aligned original line outside the remap/spare region. */
Addr
origLine(std::uint64_t i)
{
    return 0x8000 + i * 64;
}

mem::RemapTable
makeTable()
{
    return mem::RemapTable(kRemapBase, kRemapSize, kSpareBase,
                           kSpareSize);
}

/** Functional writer into a backing store. */
mem::RemapTable::WriteFn
writerTo(mem::BackingStore &img)
{
    return [&img](Addr a, std::uint64_t n, const void *d) {
        img.write(a, n, d);
    };
}

/** In-image log writer (fabricates crash states, faultlab idiom). */
class ImageLog
{
  public:
    ImageLog(mem::BackingStore &image, const AddressMap &map)
        : image(image), map(map)
    {
        slots = (map.logSize - LogRegion::kHeaderBytes) /
                LogRecord::kSlotBytes;
        std::uint64_t magic = LogRegion::kMagic;
        image.write(map.logBase(), 8, &magic);
        image.write(map.logBase() + 8, 8, &slots);
    }

    /** Append with the current pass parity. */
    Addr
    append(const LogRecord &rec)
    {
        return appendRaw(rec, (pass & 1) != 0);
    }

    /** Append with an explicit torn bit (fabricates stale slots). */
    Addr
    appendRaw(const LogRecord &rec, bool torn)
    {
        std::uint8_t img[LogRecord::kSlotBytes];
        rec.serialize(img, torn);
        Addr a = slotAddr(tail);
        image.write(a, sizeof(img), img);
        tail = (tail + 1) % slots;
        if (tail == 0)
            ++pass;
        return a;
    }

    Addr
    slotAddr(std::uint64_t slot) const
    {
        return map.logBase() + LogRegion::kHeaderBytes +
               slot * LogRecord::kSlotBytes;
    }

    std::uint64_t slots = 0;

  private:
    mem::BackingStore &image;
    AddressMap map;
    std::uint64_t tail = 0;
    std::uint64_t pass = 1;
};

/**
 * A crash image with a remap-capable address map and a fabricated log
 * exercising every salvage verdict: a committed transaction (tx 1), an
 * uncommitted one (tx 2), a stale-parity slot inside the window, a
 * second committed transaction (tx 3), and a committed transaction
 * whose update record carries multi-bit damage (tx 7, quarantined).
 */
struct RecoveryFixture
{
    AddressMap map;
    mem::BackingStore image;
    ImageLog log;
    Addr damagedSlotAddr = 0;

    RecoveryFixture()
        : map(makeMap()), image(map.nvramBase, map.nvramSize),
          log(image, map)
    {
        // Pre-crash heap contents.
        write64(data(0), 0x55); // tx 1: redo not yet home
        write64(data(1), 0x22); // tx 2: new value landed, uncommitted
        write64(data(2), 0x42); // stale slot's target: must not move
        write64(data(3), 0x33); // tx 7: quarantined, must not move
        write64(data(4), 0x00); // tx 3: redo not yet home

        log.append(LogRecord::update(0, 1, data(0), 8, 0x55, 0xAA));
        log.append(LogRecord::commit(0, 1, 1));
        log.append(LogRecord::update(1, 2, data(1), 8, 0x11, 0x22));
        // Stale pass parity inside the live window (the signature of
        // a dropped overwrite exposing an old record).
        log.appendRaw(LogRecord::update(0, 99, data(2), 8,
                                        std::nullopt, 0x99),
                      false);
        log.append(LogRecord::update(0, 3, data(4), 8, 0x00, 0xBB));
        log.append(LogRecord::commit(0, 3, 1));
        damagedSlotAddr =
            log.append(LogRecord::update(0, 7, data(3), 8, 0x77,
                                         0x88));
        log.append(LogRecord::commit(0, 7, 1));

        // Multi-bit damage on tx 7's update: uncorrectable CRC fail.
        std::uint8_t b;
        image.read(damagedSlotAddr + 10, 1, &b);
        b ^= 0x21;
        image.write(damagedSlotAddr + 10, 1, &b);
    }

    static AddressMap
    makeMap()
    {
        AddressMap m;
        m.nvramSize = 1 << 22;
        m.logSize = 4096;
        m.remapSize = 2048;
        m.spareSize = 4096;
        return m;
    }

    Addr data(std::uint64_t i) const { return map.heapBase() + i * 8; }

    void write64(Addr a, std::uint64_t v) { image.write(a, 8, &v); }

    std::uint64_t
    read64(const mem::BackingStore &img, Addr a) const
    {
        return img.read64(a);
    }

    RecoveryOptions
    canonicalOpts() const
    {
        RecoveryOptions opts;
        opts.truncateLog = true;
        opts.promoteBadLines = true;
        return opts;
    }
};

/** A MemDevice with an active remap region (device-level tests). */
struct DeviceFixture
{
    MemDeviceConfig cfg;
    mem::MemDevice dev;

    DeviceFixture() : cfg(makeCfg()), dev("nvram", cfg, 0) {}

    static MemDeviceConfig
    makeCfg()
    {
        MemDeviceConfig c;
        c.sizeBytes = 1 << 20;
        c.remapBase = kRemapBase;
        c.remapSize = kRemapSize;
        c.spareBase = kSpareBase;
        c.spareSize = kSpareSize;
        return c;
    }
};

} // namespace

// ------------------------- remap table ----------------------------

TEST(RemapTable, PersistLoadRoundtripCarriesSuperblock)
{
    mem::BackingStore img(0, 1 << 16);
    mem::RemapTable t = makeTable();
    EXPECT_EQ(t.capacity(), 60u);

    ASSERT_TRUE(t.add(origLine(0)).has_value());
    ASSERT_TRUE(t.add(origLine(1)).has_value());
    ASSERT_TRUE(t.add(origLine(2)).has_value());
    EXPECT_FALSE(t.add(origLine(1)).has_value()); // already promoted
    t.heapCursor = 1234;
    t.generation = 7;
    ASSERT_TRUE(t.persist(writerTo(img)));
    EXPECT_EQ(t.seq(), 1u);

    mem::RemapTable r = makeTable();
    mem::RemapTable::LoadResult lr = r.load(img);
    EXPECT_FALSE(lr.fresh);
    EXPECT_FALSE(lr.corrupted);
    EXPECT_EQ(lr.entriesLoaded, 3u);
    EXPECT_EQ(r.heapCursor, 1234u);
    EXPECT_EQ(r.generation, 7u);
    EXPECT_TRUE(r.wellFormed());
    ASSERT_TRUE(r.find(origLine(1)).has_value());
    EXPECT_EQ(*r.find(origLine(1)), *t.find(origLine(1)));
    EXPECT_FALSE(r.find(origLine(9)).has_value());
}

TEST(RemapTable, NeverPersistedRegionLoadsFresh)
{
    mem::BackingStore img(0, 1 << 16);
    mem::RemapTable t = makeTable();
    mem::RemapTable::LoadResult lr = t.load(img);
    EXPECT_TRUE(lr.fresh);
    EXPECT_FALSE(lr.corrupted);
    EXPECT_EQ(lr.entriesLoaded, 0u);
}

TEST(RemapTable, UpdateIsAtomicAtEveryInteriorCrashPoint)
{
    // Persist a 2-entry state, then crash a 3-entry update after every
    // possible number of chunk writes: a loader must always see the
    // old state or the new state, never a torn or corrupted one.
    mem::BackingStore img(0, 1 << 16);
    mem::RemapTable t = makeTable();
    ASSERT_TRUE(t.add(origLine(0)).has_value());
    ASSERT_TRUE(t.add(origLine(1)).has_value());
    ASSERT_TRUE(t.persist(writerTo(img)));

    bool sawOld = false, sawNew = false;
    for (std::uint64_t budget = 0; budget <= 20; ++budget) {
        mem::BackingStore probe = img;
        mem::RemapTable upd = makeTable();
        upd.load(probe);
        ASSERT_TRUE(upd.add(origLine(2)).has_value());
        upd.heapCursor = 999;
        bool completed = upd.persist(writerTo(probe), budget);

        mem::RemapTable loaded = makeTable();
        mem::RemapTable::LoadResult lr = loaded.load(probe);
        EXPECT_FALSE(lr.corrupted) << "budget " << budget;
        EXPECT_FALSE(lr.fresh) << "budget " << budget;
        if (completed) {
            sawNew = true;
            EXPECT_EQ(loaded.size(), 3u) << "budget " << budget;
            EXPECT_EQ(loaded.seq(), 2u) << "budget " << budget;
            EXPECT_EQ(loaded.heapCursor, 999u) << "budget " << budget;
        } else {
            sawOld = true;
            EXPECT_EQ(loaded.size(), 2u) << "budget " << budget;
            EXPECT_EQ(loaded.seq(), 1u) << "budget " << budget;
            // The in-memory state must be untouched by the failure.
            EXPECT_EQ(upd.seq(), 1u) << "budget " << budget;
        }
    }
    EXPECT_TRUE(sawOld);
    EXPECT_TRUE(sawNew);
}

TEST(RemapTable, SabotageIsReportedAsCorruption)
{
    mem::BackingStore img(0, 1 << 16);
    mem::RemapTable t = makeTable();
    ASSERT_TRUE(t.add(origLine(0)).has_value());
    ASSERT_TRUE(t.persist(writerTo(img)));
    EXPECT_EQ(t.validBanks(img), 1u);

    mem::RemapTable::sabotage(img, kRemapBase, kRemapSize);
    EXPECT_EQ(t.validBanks(img), 0u);
    mem::RemapTable r = makeTable();
    mem::RemapTable::LoadResult lr = r.load(img);
    EXPECT_TRUE(lr.corrupted);
    EXPECT_FALSE(lr.fresh);
}

TEST(RemapTable, SecondPersistRestoresDualBankRedundancy)
{
    mem::BackingStore img(0, 1 << 16);
    mem::RemapTable t = makeTable();
    ASSERT_TRUE(t.add(origLine(0)).has_value());
    ASSERT_TRUE(t.persist(writerTo(img)));
    EXPECT_EQ(t.validBanks(img), 1u);
    ASSERT_TRUE(t.persist(writerTo(img)));
    EXPECT_EQ(t.validBanks(img), 2u);
    EXPECT_EQ(t.seq(), 2u);
}

// ------------------------- device translation ---------------------

TEST(MemDeviceRemap, PromotedLineTrafficMovesToItsSpare)
{
    DeviceFixture f;
    ASSERT_TRUE(f.dev.remapActive());
    const Addr line = 0x10000;

    std::uint8_t before[64];
    for (unsigned i = 0; i < 64; ++i)
        before[i] = static_cast<std::uint8_t>(i * 3 + 1);
    f.dev.functionalWrite(line, 64, before);

    ASSERT_TRUE(f.dev.remapLine(line, 0));
    EXPECT_EQ(f.dev.remappedLines.value(), 1u);
    ASSERT_TRUE(f.dev.remap()->find(line).has_value());
    const Addr spare = *f.dev.remap()->find(line);
    EXPECT_EQ(f.dev.translate(line), spare);
    EXPECT_EQ(f.dev.translate(line + 17), spare + 17);

    // The promoted line's bytes were carried over to the spare.
    std::uint8_t got[64];
    f.dev.functionalRead(line, 64, got);
    EXPECT_EQ(std::memcmp(got, before, 64), 0);

    // Writes through the device land on the spare, not the raw line.
    std::uint8_t patch = 0xEE;
    f.dev.functionalWrite(line + 5, 1, &patch);
    std::uint8_t raw;
    f.dev.store().read(spare + 5, 1, &raw);
    EXPECT_EQ(raw, 0xEE);
    f.dev.store().read(line + 5, 1, &raw);
    EXPECT_NE(raw, 0xEE); // original media untouched after promotion

    // A second promotion of the same line is refused.
    EXPECT_FALSE(f.dev.remapLine(line, 0));
}

TEST(MemDeviceRemap, TableIsDurableAndReloadable)
{
    DeviceFixture f;
    const Addr line = 0x10040;
    ASSERT_TRUE(f.dev.remapLine(line, 0));
    f.dev.updateSuperblock(5555, 9);

    // The persisted table is readable by an independent loader...
    mem::RemapTable r = makeTable();
    mem::RemapTable::LoadResult lr = r.load(f.dev.store());
    EXPECT_FALSE(lr.corrupted);
    EXPECT_EQ(lr.entriesLoaded, 1u);
    ASSERT_TRUE(r.find(line).has_value());
    EXPECT_EQ(r.heapCursor, 5555u);
    EXPECT_EQ(r.generation, 9u);

    // ...and by the device's own reload path (lifecycle adoption).
    mem::RemapTable::LoadResult rr = f.dev.reloadRemap();
    EXPECT_EQ(rr.entriesLoaded, 1u);
    EXPECT_EQ(f.dev.translate(line), *r.find(line));
}

// ------------------------- log scrubber ---------------------------

namespace
{

/** Device + log region + scrubber, with a valid record in slot 0. */
struct ScrubFixture
{
    DeviceFixture f;
    LogRegion region;
    PersistConfig pcfg;
    LogScrubber scrub;
    std::uint8_t original[LogRecord::kSlotBytes];
    Addr slot0;

    ScrubFixture()
        : region(0, 4096, f.dev, "slog"), pcfg(makePcfg()),
          scrub(f.dev, pcfg)
    {
        scrub.addRegion(&region);
        LogRecord rec =
            LogRecord::update(0, 1, 0x10000, 8, 0x55, 0xAA);
        rec.serialize(original, false);
        slot0 = region.slotAddr(0);
        f.dev.store().write(slot0, sizeof(original), original);
    }

    static PersistConfig
    makePcfg()
    {
        PersistConfig p;
        p.scrub = true;
        p.scrubPromoteThreshold = 3;
        return p;
    }

    void
    flipSlotBit(unsigned bit)
    {
        std::uint8_t b;
        f.dev.store().read(slot0 + bit / 8, 1, &b);
        b ^= static_cast<std::uint8_t>(1u << (bit % 8));
        f.dev.store().write(slot0 + bit / 8, 1, &b);
    }

    bool
    slotMatchesOriginal()
    {
        std::uint8_t now[LogRecord::kSlotBytes];
        f.dev.functionalRead(slot0, sizeof(now), now);
        return std::memcmp(now, original, sizeof(now)) == 0;
    }
};

} // namespace

TEST(LogScrubber, RepairsSingleBitDamageInPlace)
{
    ScrubFixture s;
    s.flipSlotBit(77);
    EXPECT_FALSE(s.slotMatchesOriginal());
    s.scrub.scrubAll(0);
    EXPECT_EQ(s.scrub.repairs.value(), 1u);
    EXPECT_EQ(s.scrub.uncorrectable.value(), 0u);
    EXPECT_TRUE(s.slotMatchesOriginal());
    EXPECT_EQ(s.scrub.errorStreak(s.slot0 & ~Addr(63)), 1u);
}

TEST(LogScrubber, PromotesRepeatOffenderAndRestoresBankRedundancy)
{
    ScrubFixture s;
    const Addr line = s.slot0 & ~Addr(63);
    // Three scrub passes each observing fresh damage on the same
    // line: repaired every time, promoted on the third.
    for (int round = 0; round < 3; ++round) {
        s.flipSlotBit(40 + round);
        s.scrub.scrubAll(0);
        EXPECT_TRUE(s.slotMatchesOriginal());
    }
    EXPECT_EQ(s.scrub.repairs.value(), 3u);
    EXPECT_EQ(s.scrub.promotions.value(), 1u);
    EXPECT_EQ(s.f.dev.remappedLines.value(), 1u);
    ASSERT_TRUE(s.f.dev.remap()->find(line).has_value());
    EXPECT_EQ(s.scrub.errorStreak(line), 0u); // streak retired

    // The promotion's single-bank persist was immediately followed by
    // a redundancy restoration into the other bank.
    EXPECT_GE(s.scrub.bankRepairs.value(), 1u);
    EXPECT_EQ(s.f.dev.remap()->validBanks(s.f.dev.store()), 2u);

    // Damage one bank: the next scrub step restores redundancy again.
    std::uint8_t junk[64];
    std::memset(junk, 0xA5, sizeof(junk));
    std::uint32_t target =
        (s.f.dev.remap()->seq() + 1) % 2; // the bank persist refills
    s.f.dev.store().write(s.f.dev.remap()->bankBase(target),
                          sizeof(junk), junk);
    EXPECT_EQ(s.f.dev.remap()->validBanks(s.f.dev.store()), 1u);
    std::uint64_t repairsBefore = s.scrub.bankRepairs.value();
    s.scrub.step(0);
    EXPECT_EQ(s.scrub.bankRepairs.value(), repairsBefore + 1);
    EXPECT_EQ(s.f.dev.remap()->validBanks(s.f.dev.store()), 2u);
}

TEST(LogScrubber, LeavesLiveUncorrectableSlotsForRecovery)
{
    ScrubFixture s;
    // Multi-bit damage: not single-bit-correctable.
    s.flipSlotBit(10);
    s.flipSlotBit(99);
    // Dead slot (region meta says nothing is live): zeroed outright.
    s.scrub.scrubAll(0);
    EXPECT_EQ(s.scrub.repairs.value(), 0u);
    EXPECT_EQ(s.scrub.zeroed.value(), 1u);
    std::uint8_t now[LogRecord::kSlotBytes];
    std::uint8_t zeros[LogRecord::kSlotBytes] = {};
    s.f.dev.functionalRead(s.slot0, sizeof(now), now);
    EXPECT_EQ(std::memcmp(now, zeros, sizeof(now)), 0);
}

// ------------------------- livelock guard -------------------------

TEST(TxnTracker, AbortRetryCapEscalatesToStall)
{
    TxnTracker t;
    t.setAbortRetryCap(2);

    std::uint64_t s1 = t.begin(0);
    EXPECT_TRUE(t.requestAbort(s1));
    t.abort(s1);
    std::uint64_t s2 = t.begin(0);
    EXPECT_TRUE(t.requestAbort(s2));
    t.abort(s2);
    EXPECT_EQ(t.victimStreak(0), 2u);

    // Third consecutive request against the same thread: denied.
    std::uint64_t s3 = t.begin(0);
    EXPECT_FALSE(t.requestAbort(s3));
    EXPECT_EQ(t.abortEscalations.value(), 1u);
    EXPECT_FALSE(t.abortRequested(s3));

    // A successful commit resets the streak; requests flow again.
    t.commit(s3);
    EXPECT_EQ(t.victimStreak(0), 0u);
    std::uint64_t s4 = t.begin(0);
    EXPECT_TRUE(t.requestAbort(s4));
    t.abort(s4);

    // Another thread is never throttled by thread 0's streak.
    std::uint64_t o = t.begin(1);
    EXPECT_TRUE(t.requestAbort(o));
    t.abort(o);
}

TEST(TxnTracker, ZeroCapDisablesTheGuard)
{
    TxnTracker t; // default cap comes from config; tracker default 0
    for (int i = 0; i < 10; ++i) {
        std::uint64_t s = t.begin(0);
        EXPECT_TRUE(t.requestAbort(s));
        t.abort(s);
    }
    EXPECT_EQ(t.abortEscalations.value(), 0u);
}

// ------------------------- salvaging recovery ---------------------

TEST(LifelabRecovery, SalvagesQuarantinesAndPromotes)
{
    RecoveryFixture f;
    mem::BackingStore img = f.image;
    RecoveryReport rep =
        Recovery::run(img, f.map, f.canonicalOpts());

    EXPECT_TRUE(rep.headerValid);
    EXPECT_EQ(rep.salvagedTxns, 2u);     // tx 1, tx 3
    EXPECT_EQ(rep.quarantinedTxns, 1u);  // tx 7
    EXPECT_EQ(rep.uncommittedTxns, 1u);  // tx 2
    EXPECT_EQ(rep.stalePassSlots, 1u);   // fabricated stale slot
    EXPECT_EQ(rep.crcFailSlots, 1u);     // tx 7's damaged update
    EXPECT_EQ(rep.undoApplied, 1u);
    EXPECT_EQ(rep.redoApplied, 2u);
    ASSERT_EQ(rep.quarantinedTxIds.size(), 1u);
    EXPECT_EQ(rep.quarantinedTxIds[0], 7u);

    EXPECT_EQ(img.read64(f.data(0)), 0xAAu); // redo replayed
    EXPECT_EQ(img.read64(f.data(1)), 0x11u); // undo rolled back
    EXPECT_EQ(img.read64(f.data(2)), 0x42u); // stale slot ignored
    EXPECT_EQ(img.read64(f.data(3)), 0x33u); // quarantined untouched
    EXPECT_EQ(img.read64(f.data(4)), 0xBBu); // redo replayed

    // The damaged slot's line was promoted into the remap table.
    EXPECT_GE(rep.promotedLines, 1u);
    EXPECT_FALSE(rep.remapCorrupt);
    mem::RemapTable r(f.map.remapBase(), f.map.remapSize,
                      f.map.spareBase(), f.map.spareSize);
    mem::RemapTable::LoadResult lr = r.load(img);
    EXPECT_FALSE(lr.corrupted);
    EXPECT_GE(lr.entriesLoaded, 1u);
    EXPECT_TRUE(
        r.find(f.damagedSlotAddr & ~Addr(63)).has_value());

    // Truncation completed: slots zeroed, flag lowered, header alive.
    EXPECT_EQ(
        img.read64(f.map.logBase() + LogRegion::kTruncFlagOffset),
        0u);
    for (std::uint64_t s = 0; s < f.log.slots; ++s) {
        std::uint8_t raw[LogRecord::kSlotBytes];
        std::uint8_t zeros[LogRecord::kSlotBytes] = {};
        // Read through the promoted line's spare mapping.
        Addr a = f.log.slotAddr(s);
        if (auto sp = r.find(a & ~Addr(63)))
            a = *sp + (a & 63);
        img.read(a, sizeof(raw), raw);
        EXPECT_EQ(std::memcmp(raw, zeros, sizeof(raw)), 0)
            << "slot " << s;
    }
    EXPECT_EQ(img.read64(f.map.logBase()), LogRegion::kMagic);
}

TEST(LifelabRecovery, WritePlanIsDeterministicUnderBudgets)
{
    RecoveryFixture f;
    mem::BackingStore ref = f.image;
    RecoveryReport full =
        Recovery::run(ref, f.map, f.canonicalOpts());
    ASSERT_GT(full.writesIssued, 4u);
    EXPECT_EQ(full.writesApplied, full.writesIssued);
    EXPECT_FALSE(full.interrupted);

    for (std::uint64_t budget :
         {std::uint64_t(0), std::uint64_t(1),
          full.writesIssued / 2, full.writesIssued}) {
        mem::BackingStore img = f.image;
        RecoveryOptions opts = f.canonicalOpts();
        opts.crashAfterWrites = budget;
        RecoveryReport rep = Recovery::run(img, f.map, opts);
        EXPECT_EQ(rep.writesIssued, full.writesIssued)
            << "budget " << budget;
        EXPECT_EQ(rep.writesApplied,
                  std::min(budget, full.writesIssued))
            << "budget " << budget;
        EXPECT_EQ(rep.interrupted, budget < full.writesIssued)
            << "budget " << budget;
    }
}

TEST(LifelabRecovery, TruncationFlagResumesInterruptedTruncation)
{
    // Regression for the re-entrancy protocol: a crash inside the
    // truncation zeroing must not let the next recovery reinterpret
    // the partially-zeroed slot array (a zeroed prefix can detach a
    // commit record from its updates, or leave a stale-pass slot as
    // the apparent window start). Recovery raises the truncation flag
    // before zeroing; a pass finding it set only resumes the zeroing.
    RecoveryFixture f;
    mem::BackingStore ref = f.image;
    RecoveryReport full =
        Recovery::run(ref, f.map, f.canonicalOpts());

    mem::BackingStore cut = f.image;
    RecoveryOptions opts = f.canonicalOpts();
    opts.crashAfterWrites = full.writesIssued - 2;
    RecoveryReport r1 = Recovery::run(cut, f.map, opts);
    EXPECT_TRUE(r1.interrupted);
    EXPECT_EQ(r1.writesIssued, full.writesIssued);
    // The crash point is inside the zeroing: the flag is up.
    EXPECT_NE(
        cut.read64(f.map.logBase() + LogRegion::kTruncFlagOffset),
        0u);

    RecoveryReport r2 =
        Recovery::run(cut, f.map, f.canonicalOpts());
    EXPECT_TRUE(r2.headerValid);
    EXPECT_EQ(
        cut.read64(f.map.logBase() + LogRegion::kTruncFlagOffset),
        0u);
    EXPECT_FALSE(ref.firstDifference(cut, f.map.nvramBase,
                                     f.map.nvramSize)
                     .has_value());
}

TEST(LifelabRecovery, ReentrantAtEveryInteriorWriteBudget)
{
    RecoveryFixture f;
    std::vector<crashlab::Violation> v =
        crashlab::checkRecoveryReentrancy(f.image, f.map,
                                          f.canonicalOpts(), 1);
    for (const crashlab::Violation &viol : v)
        ADD_FAILURE() << viol.invariant << ": " << viol.detail;
}

// ------------------------- lifecycle soak -------------------------

namespace
{

crashlab::LifecycleConfig
soakConfig(std::uint32_t generations)
{
    crashlab::LifecycleConfig cfg;
    cfg.run.workload = "sps";
    cfg.run.mode = PersistMode::Fwb;
    cfg.run.params.threads = 2;
    cfg.run.params.txPerThread = 80;
    cfg.run.sys = SystemConfig::scaled(2);
    cfg.generations = generations;
    cfg.reentrancyBudgets = 2;
    return cfg;
}

} // namespace

TEST(Lifecycle, CleanMultiGenerationSoakPasses)
{
    crashlab::LifecycleConfig cfg = soakConfig(5);
    cfg.run.sys.persist.scrub = true;
    crashlab::LifecycleResult res = crashlab::runLifecycle(cfg);

    for (const crashlab::GenerationResult &g : res.generations)
        for (const crashlab::Violation &v : g.violations)
            ADD_FAILURE() << "gen " << g.generation << " "
                          << v.invariant << ": " << v.detail;
    EXPECT_TRUE(res.passed());
    ASSERT_EQ(res.generations.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i) {
        EXPECT_EQ(res.generations[i].generation, i);
        EXPECT_GT(res.generations[i].crashTick, 0u);
        EXPECT_GT(res.generations[i].committedTx, 0u);
    }
}

TEST(Lifecycle, SurvivesHeavyImageFaultsAcrossGenerations)
{
    // I9 across generations under aggressive per-generation snapshot
    // damage: salvage what is provably committed, quarantine the
    // rest, and never lose a byte a previous generation recovered.
    crashlab::LifecycleConfig cfg = soakConfig(3);
    cfg.imageFaults = crashlab::ImageFaultConfig::heavy(3);
    crashlab::LifecycleResult res = crashlab::runLifecycle(cfg);

    for (const crashlab::GenerationResult &g : res.generations)
        for (const crashlab::Violation &v : g.violations)
            ADD_FAILURE() << "gen " << g.generation << " "
                          << v.invariant << ": " << v.detail;
    EXPECT_TRUE(res.passed());
    ASSERT_EQ(res.generations.size(), 3u);

    std::uint64_t faulted = 0;
    for (const crashlab::GenerationResult &g : res.generations)
        faulted += g.slotsFaulted;
    EXPECT_GT(faulted, 0u);
    // Heavy damage promotes bad lines; the table survives restarts.
    EXPECT_GT(res.generations.back().remapEntries, 0u);
}

TEST(Lifecycle, SabotagedRemapTableAbortsTheSoak)
{
    crashlab::LifecycleConfig cfg = soakConfig(4);
    cfg.sabotageGeneration = 1;
    crashlab::LifecycleResult res = crashlab::runLifecycle(cfg);

    EXPECT_TRUE(res.aborted);
    EXPECT_FALSE(res.passed());
    ASSERT_EQ(res.generations.size(), 2u);
    bool found = false;
    for (const crashlab::Violation &v :
         res.generations.back().violations)
        if (v.invariant == "remap-table-valid")
            found = true;
    EXPECT_TRUE(found)
        << "sabotage must surface as a remap-table-valid violation";
}
