/**
 * @file
 * Unit tests for the simulation kernel: event queue, PRNG, stats,
 * and the coroutine task type.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <sstream>
#include <utility>
#include <vector>

#include "sim/coro.hh"
#include "sim/event_queue.hh"
#include "sim/small_callback.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace snf;
using namespace snf::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](Tick) { order.push_back(3); });
    q.schedule(10, [&](Tick) { order.push_back(1); });
    q.schedule(20, [&](Tick) { order.push_back(2); });
    EXPECT_EQ(q.nextEventTick(), 10u);
    EXPECT_EQ(q.runUntil(25), 2u);
    EXPECT_EQ(q.runUntil(100), 1u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&, i](Tick) { order.push_back(i); });
    q.runUntil(5);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMayReschedule)
{
    EventQueue q;
    int fired = 0;
    std::function<void(Tick)> tick = [&](Tick when) {
        if (++fired < 5)
            q.schedule(when + 10, tick);
    };
    q.schedule(0, tick);
    q.runUntil(1000);
    EXPECT_EQ(fired, 5);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearDropsEverything)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&](Tick) { ++fired; });
    q.clear();
    q.runUntil(100);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(q.nextEventTick(), kTickNever);
}

TEST(EventQueue, EventsReceiveTheirScheduledTick)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(42, [&](Tick when) { seen = when; });
    q.runUntil(100);
    EXPECT_EQ(seen, 42u);
}

namespace
{

/**
 * Reference model of the pre-calendar event queue: one binary heap
 * ordered by (tick, insertion seq). The calendar queue must replay
 * any schedule trace in exactly this order.
 */
class ReferenceHeapQueue
{
  public:
    void
    schedule(Tick when, std::function<void(Tick)> cb)
    {
        entries.push_back(Entry{when, nextSeq++, std::move(cb)});
        std::push_heap(entries.begin(), entries.end(), later);
    }

    std::uint64_t
    runUntil(Tick now)
    {
        std::uint64_t executed = 0;
        while (!entries.empty() && entries.front().when <= now) {
            std::pop_heap(entries.begin(), entries.end(), later);
            Entry e = std::move(entries.back());
            entries.pop_back();
            e.cb(e.when);
            ++executed;
        }
        return executed;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void(Tick)> cb;
    };

    static bool
    later(const Entry &a, const Entry &b)
    {
        return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }

    std::vector<Entry> entries;
    std::uint64_t nextSeq = 0;
};

} // namespace

/**
 * Differential test: drive the calendar queue and the reference heap
 * with an identical randomized schedule trace — near-ring ticks,
 * far-future heap spills, same-tick bursts, past-tick schedules, and
 * events that schedule more events from inside their callbacks — and
 * require the execution orders to match element for element.
 */
TEST(EventQueue, MatchesReferenceHeapOrderOnRandomTraces)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        EventQueue q;
        ReferenceHeapQueue ref;
        std::vector<std::pair<int, Tick>> gotQ;
        std::vector<std::pair<int, Tick>> gotRef;

        // Two identically seeded RNG streams keep the traces equal
        // while each queue's callbacks draw independently.
        Rng rngQ(seed);
        Rng rngRef(seed);
        int idQ = 0;
        int idRef = 0;

        auto spawn = [](auto &queue, auto &rng, auto &got, int &id,
                        Tick base, auto &&self) -> void {
            int me = id++;
            // Mix of ring-span offsets, same-tick, far-future heap
            // spills, and occasional already-past ticks.
            std::uint64_t kind = rng.below(8);
            Tick when = base;
            if (kind < 4)
                when = base + rng.below(64);
            else if (kind < 6)
                when = base + 900 + rng.below(4000);
            else if (kind == 6)
                when = base; // same tick as the caller
            else
                when = base > 50 ? base - rng.below(50) : base;
            bool respawn = rng.below(4) == 0;
            queue.schedule(
                when, [me, respawn, base, &queue, &rng, &got, &id,
                       self](Tick t) {
                    got.emplace_back(me, t);
                    if (respawn && id < 400)
                        self(queue, rng, got, id, t + 1 + (me % 7),
                             self);
                });
        };

        Tick now = 0;
        for (int round = 0; round < 12; ++round) {
            for (int n = 0; n < 16; ++n) {
                spawn(q, rngQ, gotQ, idQ, now, spawn);
                spawn(ref, rngRef, gotRef, idRef, now, spawn);
            }
            now += 128;
            q.runUntil(now);
            ref.runUntil(now);
        }
        q.runUntil(now + 100000);
        ref.runUntil(now + 100000);

        ASSERT_EQ(idQ, idRef) << "seed " << seed;
        EXPECT_EQ(gotQ, gotRef) << "seed " << seed;
        EXPECT_TRUE(q.empty());
    }
}

TEST(EventQueue, ClearRetainsAQueueReusableBetweenRuns)
{
    // The harness pattern: one queue, many simulations. clear() must
    // drop pending events, reset the tick origin and stat counters,
    // and leave the queue fully usable for a new run starting at 0.
    EventQueue q;
    std::vector<Tick> fired;
    for (int run = 0; run < 3; ++run) {
        for (Tick t : {5u, 2000u, 7u})
            q.schedule(t, [&](Tick when) { fired.push_back(when); });
        q.schedule(100000, [&](Tick) { fired.push_back(999999); });
        EXPECT_EQ(q.size(), 4u);
        q.runUntil(2000);
        EXPECT_EQ(fired, (std::vector<Tick>{5, 7, 2000}));
        fired.clear();

        q.clear();
        EXPECT_TRUE(q.empty());
        EXPECT_EQ(q.nextEventTick(), kTickNever);
        EXPECT_EQ(q.statScheduled(), 0u);
        EXPECT_EQ(q.statExecuted(), 0u);
        EXPECT_EQ(q.statHeapSpills(), 0u);
        EXPECT_EQ(q.statCallbackHeapAllocs(), 0u);
    }
}

TEST(EventQueue, CountsSchedulingActivity)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&](Tick) { ++fired; });       // ring
    q.schedule(5000, [&](Tick) { ++fired; });    // heap spill
    q.runUntil(10000);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.statScheduled(), 2u);
    EXPECT_EQ(q.statExecuted(), 2u);
    EXPECT_EQ(q.statHeapSpills(), 1u);
    // Both captures fit the small-buffer callback inline.
    EXPECT_EQ(q.statCallbackHeapAllocs(), 0u);
}

TEST(SmallCallback, InlineCaptureStaysOffTheHeap)
{
    std::uint64_t acc = 0;
    SmallCallback cb([&acc](Tick t) { acc += t; });
    EXPECT_FALSE(cb.onHeap());
    cb(7);
    cb(8);
    EXPECT_EQ(acc, 15u);
}

TEST(SmallCallback, OversizedCaptureSpillsToHeapAndStillRuns)
{
    struct Big
    {
        std::uint64_t pad[16];
    };
    Big big{};
    big.pad[0] = 5;
    std::uint64_t acc = 0;
    SmallCallback cb([&acc, big](Tick t) { acc += t + big.pad[0]; });
    EXPECT_TRUE(cb.onHeap());
    cb(10);
    EXPECT_EQ(acc, 15u);
}

TEST(SmallCallback, MovePreservesTheCallable)
{
    std::uint64_t acc = 0;
    SmallCallback a([&acc](Tick t) { acc += t; });
    SmallCallback b = std::move(a);
    EXPECT_FALSE(a); // moved-from is empty
    EXPECT_TRUE(b);
    b(3);
    SmallCallback c;
    c = std::move(b);
    c(4);
    EXPECT_EQ(acc, 7u);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123), c(124);
    bool all_equal = true;
    bool any_diff_seed = false;
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.next();
        all_equal &= (va == b.next());
        any_diff_seed |= (va != c.next());
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = rng.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, StrLengthAndCharset)
{
    Rng rng(13);
    std::string s = rng.str(64);
    EXPECT_EQ(s.size(), 64u);
    for (char c : s)
        EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
}

TEST(Rng, SplitIsIndependentOfDrawOrder)
{
    // The regression the split() API exists for: drawing from the
    // parent (or a sibling) before splitting must not change what a
    // child stream produces.
    Rng fresh(42);
    Rng drained(42);
    for (int i = 0; i < 57; ++i)
        drained.next();
    Rng sibling = drained.split(9);
    (void)sibling.next();

    Rng a = fresh.split(3);
    Rng b = drained.split(3);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, SplitStreamsAreDistinct)
{
    Rng root(42);
    Rng a = root.split(0);
    Rng b = root.split(1);
    bool differsFromSibling = false;
    bool differsFromParent = false;
    Rng parent(42);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.next();
        differsFromSibling |= va != b.next();
        differsFromParent |= va != parent.next();
    }
    EXPECT_TRUE(differsFromSibling);
    EXPECT_TRUE(differsFromParent);
}

TEST(Rng, SplitNestsDeterministically)
{
    Rng a = Rng(7).split(1).split(2);
    Rng b = Rng(7).split(1).split(2);
    Rng other = Rng(7).split(2).split(1);
    bool pathMatters = false;
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.next();
        ASSERT_EQ(va, b.next());
        pathMatters |= va != other.next();
    }
    EXPECT_TRUE(pathMatters);
}

TEST(Zipf, SkewsTowardsSmallKeys)
{
    Rng rng(17);
    Zipf zipf(1000, 0.9);
    std::uint64_t low = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i) {
        std::uint64_t k = zipf.sample(rng);
        ASSERT_LT(k, 1000u);
        if (k < 10)
            ++low;
    }
    // The 1% hottest keys should draw far more than 1% of samples.
    EXPECT_GT(low, total / 10);
}

TEST(Stats, CountersAndScalars)
{
    StatGroup g("test");
    g.counter("events").inc();
    g.counter("events").inc(4);
    g.scalar("energy").add(2.5);
    EXPECT_EQ(g.counterValue("events"), 5u);
    EXPECT_DOUBLE_EQ(g.scalarValue("energy"), 2.5);
    EXPECT_EQ(g.counterValue("missing"), 0u);
}

TEST(Stats, DumpIncludesChildren)
{
    StatGroup parent("mem");
    StatGroup child("l1");
    parent.addChild(&child);
    child.counter("hits").inc(3);
    std::ostringstream os;
    parent.dump(os);
    EXPECT_NE(os.str().find("mem.l1.hits = 3"), std::string::npos);
}

TEST(Stats, ResetAllClearsRecursively)
{
    StatGroup parent("p");
    StatGroup child("c");
    parent.addChild(&child);
    parent.counter("x").inc(2);
    child.scalar("y").set(9);
    parent.resetAll();
    EXPECT_EQ(parent.counterValue("x"), 0u);
    EXPECT_DOUBLE_EQ(child.scalarValue("y"), 0.0);
}

TEST(Logging, Strfmt)
{
    EXPECT_EQ(strfmt("a%db", 7), "a7b");
    EXPECT_EQ(strfmt("%s-%s", "x", "y"), "x-y");
}

namespace
{

Co<int>
leaf(int v)
{
    co_return v * 2;
}

Co<int>
branch(int v)
{
    int a = co_await leaf(v);
    int b = co_await leaf(v + 1);
    co_return a + b;
}

struct ManualResume
{
    std::coroutine_handle<> handle;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h) noexcept
    {
        handle = h;
    }

    void await_resume() const noexcept {}
};

} // namespace

namespace
{

// Coroutine arguments are copied into the frame, so pointer/reference
// parameters are the safe way to observe state (capturing-lambda
// coroutines dangle once the closure dies).
Co<void>
nestedRoot(int *result)
{
    *result = co_await branch(10);
}

Co<void>
gatedRoot(ManualResume *gate, int *stage)
{
    *stage = 1;
    co_await *gate;
    *stage = 2;
}

Co<int>
thrower()
{
    throw std::runtime_error("boom");
    co_return 0;
}

Co<void>
catcher(bool *caught)
{
    try {
        co_await thrower();
    } catch (const std::runtime_error &) {
        *caught = true;
    }
}

} // namespace

TEST(Coro, NestedValueTasks)
{
    int result = 0;
    Co<void> root = nestedRoot(&result);
    root.raw().resume();
    EXPECT_TRUE(root.done());
    EXPECT_EQ(result, 20 + 22);
}

TEST(Coro, SuspendAndResumeThroughAwaiter)
{
    ManualResume gate;
    int stage = 0;
    Co<void> root = gatedRoot(&gate, &stage);
    EXPECT_EQ(stage, 0); // lazy start
    root.raw().resume();
    EXPECT_EQ(stage, 1);
    EXPECT_FALSE(root.done());
    gate.handle.resume();
    EXPECT_EQ(stage, 2);
    EXPECT_TRUE(root.done());
}

TEST(Coro, ExceptionPropagatesToAwaiter)
{
    bool caught = false;
    Co<void> root = catcher(&caught);
    root.raw().resume();
    EXPECT_TRUE(caught);
}
