/**
 * @file
 * Unit tests for the memory device timing/energy model: row-buffer
 * behaviour, bank parallelism, read priority over posted writes, the
 * streaming log-write lane, acceptance (ADR) semantics, and energy
 * accounting.
 */

#include <gtest/gtest.h>

#include "mem/mem_device.hh"

using namespace snf;
using namespace snf::mem;

namespace
{

MemDeviceConfig
pcm()
{
    MemDeviceConfig cfg;
    cfg.sizeBytes = 1 << 24;
    return cfg; // paper defaults: 90/250/750 + 8 burst, 8 banks
}

} // namespace

TEST(MemDevice, FirstReadIsRowConflict)
{
    MemDevice dev("d", pcm(), 0);
    std::uint8_t buf[64];
    auto res = dev.access(false, 0, 64, nullptr, buf, 0);
    EXPECT_EQ(res.done, 0u + 250 + 8);
    EXPECT_FALSE(res.rowHit);
}

TEST(MemDevice, SecondReadSameRowHits)
{
    MemDevice dev("d", pcm(), 0);
    std::uint8_t buf[64];
    auto r1 = dev.access(false, 0, 64, nullptr, buf, 0);
    auto r2 = dev.access(false, 64, 64, nullptr, buf, r1.done);
    EXPECT_TRUE(r2.rowHit);
    EXPECT_EQ(r2.done, r1.done + 90 + 8);
}

TEST(MemDevice, DifferentBanksOverlap)
{
    MemDevice dev("d", pcm(), 0);
    std::uint8_t buf[64];
    // Rows 0 and 1 live on banks 0 and 1.
    auto r1 = dev.access(false, 0, 64, nullptr, buf, 0);
    auto r2 = dev.access(false, 2048, 64, nullptr, buf, 0);
    // The second read only serializes on the channel burst, not on
    // the first read's bank.
    EXPECT_EQ(r2.done, 8u + 250 + 8);
    EXPECT_LT(r2.done, r1.done + 250);
}

TEST(MemDevice, SameBankSerializes)
{
    MemDevice dev("d", pcm(), 0);
    std::uint8_t buf[64];
    auto r1 = dev.access(false, 0, 64, nullptr, buf, 0);
    // Same bank (row 0), issued at tick 0: waits for the bank.
    auto r2 = dev.access(false, 128, 64, nullptr, buf, 0);
    EXPECT_GE(r2.done, r1.done + 90);
}

TEST(MemDevice, ReadsBypassPostedWrites)
{
    MemDevice dev("d", pcm(), 0);
    std::uint8_t buf[64] = {};
    // Queue a long data write on bank 0.
    dev.access(true, 0, 64, buf, nullptr, 0);
    // A read to another bank starts immediately.
    auto rd = dev.access(false, 2048, 64, nullptr, buf, 0);
    EXPECT_EQ(rd.done, 0u + 250 + 8);
}

TEST(MemDevice, WriteAcceptanceIsFast)
{
    MemDevice dev("d", pcm(), 0);
    std::uint8_t buf[64] = {1};
    auto wr = dev.access(true, 0, 64, buf, nullptr, 0);
    // ADR semantics: persistent once accepted (start + burst), not
    // after the 750-cycle PCM cell write.
    EXPECT_EQ(wr.done, 8u);
}

TEST(MemDevice, BackToBackDataWritesSerializeOnBank)
{
    MemDevice dev("d", pcm(), 0);
    std::uint8_t buf[64] = {};
    auto w1 = dev.access(true, 0, 64, buf, nullptr, 0);
    auto w2 = dev.access(true, 128, 64, buf, nullptr, 0);
    // Same bank: the second write queues behind the first's full
    // service (conflict write, 750 + burst).
    EXPECT_GE(w2.done, 750u);
    (void)w1;
}

TEST(MemDevice, StreamingLogWritesAreFasterThanConflicts)
{
    MemDevice dev("d", pcm(), 0);
    std::uint8_t buf[64] = {};
    auto w1 = dev.access(true, 0, 64, buf, nullptr, 0, true);
    auto w2 = dev.access(true, 64, 64, buf, nullptr, w1.done, true);
    Tick per_write = w2.done - w1.done;
    EXPECT_LT(per_write, 90u); // well under even a row-hit write
    EXPECT_EQ(per_write, dev.sequentialWriteCycles(64));
}

TEST(MemDevice, LogWritesDoNotCloseDemandRow)
{
    MemDevice dev("d", pcm(), 0);
    std::uint8_t buf[64];
    auto r1 = dev.access(false, 0, 64, nullptr, buf, 0);
    // A streaming log write to the same bank's other row.
    dev.access(true, 2048 * 8, 64, buf, nullptr, r1.done, true);
    // The next read to row 0 still row-hits.
    auto r2 = dev.access(false, 64, 64, nullptr, buf, r1.done + 2000);
    EXPECT_TRUE(r2.rowHit);
}

TEST(MemDevice, FunctionalAccessMovesData)
{
    MemDevice dev("d", pcm(), 0);
    std::uint64_t v = 0x1122334455667788ULL;
    dev.functionalWrite(512, 8, &v);
    std::uint64_t out = 0;
    dev.functionalRead(512, 8, &out);
    EXPECT_EQ(out, v);
}

TEST(MemDevice, TimedWriteVisibleToTimedRead)
{
    MemDevice dev("d", pcm(), 0);
    std::uint64_t v = 42;
    dev.access(true, 256, 8, &v, nullptr, 0);
    std::uint64_t out = 0;
    dev.access(false, 256, 8, nullptr, &out, 1000);
    EXPECT_EQ(out, 42u);
}

TEST(MemDevice, EnergyAccounting)
{
    MemDevice dev("d", pcm(), 0);
    std::uint8_t buf[64] = {};
    EXPECT_DOUBLE_EQ(dev.writeEnergyPj.value(), 0.0);
    dev.access(true, 0, 64, buf, nullptr, 0);
    // 512 bits x (1.02 + 16.82) pJ/bit.
    EXPECT_NEAR(dev.writeEnergyPj.value(), 512 * 17.84, 1e-6);
    dev.access(false, 4096, 64, nullptr, buf, 10000);
    // Conflict read: 512 x (0.93 + 2.47).
    EXPECT_NEAR(dev.readEnergyPj.value(), 512 * 3.40, 1e-6);
}

TEST(MemDevice, CountersTrackBytes)
{
    MemDevice dev("d", pcm(), 0);
    std::uint8_t buf[64] = {};
    dev.access(true, 0, 64, buf, nullptr, 0);
    dev.access(true, 64, 16, buf, nullptr, 0);
    dev.access(false, 0, 64, nullptr, buf, 0);
    EXPECT_EQ(dev.writes.value(), 2u);
    EXPECT_EQ(dev.writeBytes.value(), 80u);
    EXPECT_EQ(dev.reads.value(), 1u);
    EXPECT_EQ(dev.readBytes.value(), 64u);
}

TEST(MemDevice, JournalTickMatchesAcceptance)
{
    MemDeviceConfig cfg = pcm();
    MemDevice dev("d", cfg, 0);
    dev.store().enableJournal();
    std::uint64_t v = 7;
    auto res = dev.access(true, 0, 8, &v, nullptr, 1000);
    // Visible in a snapshot at the acceptance tick, not before.
    EXPECT_EQ(dev.store().snapshotAt(res.done).read64(0), 7u);
    EXPECT_EQ(dev.store().snapshotAt(res.done - 1).read64(0), 0u);
}

TEST(MemDevice, SequentialWriteCyclesScalesWithSize)
{
    MemDevice dev("d", pcm(), 0);
    EXPECT_LT(dev.sequentialWriteCycles(32),
              dev.sequentialWriteCycles(2048));
    // A full row pays roughly the whole conflict latency.
    EXPECT_GE(dev.sequentialWriteCycles(2048), 750u);
}

TEST(MemDeviceDeathTest, TimedLogWriteMustStayWithinOneShardSlice)
{
    // Shard parity guard (shardlab): with the log region declared as
    // N equal slices, any timed log-origin write that straddles a
    // slice boundary means a backend routed a record to the wrong
    // shard — it must fail loudly, not corrupt the neighbor shard's
    // header or slot array.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MemDevice dev("d", pcm(), 0);
    dev.setLogRegion(0x10000, 0x8000); // 4 slices of 0x2000
    dev.setLogShards(4);

    std::uint8_t buf[64] = {};
    // In-slice writes are fine, including ones that touch a slice's
    // last byte exactly.
    dev.access(true, 0x10000, 64, buf, nullptr, 0, true,
               PersistOrigin::LogDrain);
    dev.access(true, 0x12000 - 64, 64, buf, nullptr, 0, true,
               PersistOrigin::LogDrain);
    // Straddling the slice boundary at 0x12000 trips the assert.
    EXPECT_DEATH(dev.access(true, 0x12000 - 32, 64, buf, nullptr, 0,
                            true, PersistOrigin::LogDrain),
                 "straddles shard slices");
}

TEST(MemDevice, UnshardedLogWritesAreNotShardChecked)
{
    // shards == 1 must behave exactly as before shardlab: a log
    // write anywhere inside the region is legal.
    MemDevice dev("d", pcm(), 0);
    dev.setLogRegion(0x10000, 0x8000);
    dev.setLogShards(1);
    std::uint8_t buf[64] = {};
    dev.access(true, 0x12000 - 32, 64, buf, nullptr, 0, true,
               PersistOrigin::LogDrain);
    EXPECT_EQ(dev.writes.value(), 1u);
}
