/**
 * @file
 * Tests for conformlab: the `.snfprog` program representation and
 * serialization, the seeded program generator, the pure model oracle
 * (golden images and metamorphic commutation), the three-way
 * differential runner, and the program shrinker (including the
 * end-to-end self-test: an injected recovery bug must be caught and
 * minimized to a trivial repro).
 */

#include <gtest/gtest.h>

#include <string>

#include "conformlab/diffrun.hh"
#include "conformlab/oracle.hh"
#include "conformlab/proggen.hh"
#include "conformlab/program.hh"
#include "conformlab/shrink.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::conformlab;

#ifndef SNF_CORPUS_DIR
#define SNF_CORPUS_DIR "tests/corpus"
#endif

namespace
{

Program
twoThreadProgram()
{
    Program p;
    p.threads = 2;
    p.slotsPerThread = 4;
    p.txs.push_back({0, false, 0, {{0, 0xa}, {1, 0xb}}});
    p.txs.push_back({1, false, 3, {{0, 0xc}}});
    p.txs.push_back({0, true, 0, {{2, 0xdead}}});
    p.txs.push_back({1, false, 0, {{0, 0xd}, {3, 0xe}}});
    return p;
}

} // namespace

// ------------------------ representation -------------------------

TEST(Program, EmitParseRoundTrip)
{
    Program p = twoThreadProgram();
    p.seed = 99;
    Program q;
    std::string err;
    ASSERT_TRUE(parseProgram(emitProgram(p), &q, &err)) << err;
    EXPECT_EQ(p, q);
    EXPECT_EQ(q.seed, 99u);
    // The emission itself is deterministic (repro files are diffable).
    EXPECT_EQ(emitProgram(p), emitProgram(q));
}

TEST(Program, ParseRejectsMalformedDocuments)
{
    Program q;
    std::string err;
    EXPECT_FALSE(parseProgram("", &q, &err));
    EXPECT_FALSE(parseProgram("snfprog 3\nthreads 1\nslots 1\nend\n",
                              &q, &err))
        << "unknown version must be rejected";
    // v2-only directives under a v1 header.
    EXPECT_FALSE(parseProgram("snfprog 1\nthreads 1\nslots 2\n"
                              "shared 2\nseed 0\nend\n",
                              &q, &err));
    EXPECT_FALSE(parseProgram("snfprog 1\nthreads 1\nslots 2\n"
                              "seed 0\ntx 0 commit 0\n"
                              "  load 0\nend\n",
                              &q, &err));
    // Shared op outside the declared shared region.
    EXPECT_FALSE(parseProgram("snfprog 2\nthreads 1\nslots 2\n"
                              "shared 1\nseed 0\ntx 0 commit 0\n"
                              "  sstore 1 0x1\nend\n",
                              &q, &err));
    // Store outside the owning thread's partition.
    EXPECT_FALSE(parseProgram("snfprog 1\nthreads 1\nslots 2\n"
                              "seed 0\ntx 0 commit 0\n"
                              "  store 2 0x1\nend\n",
                              &q, &err));
    // Transaction on a nonexistent thread.
    EXPECT_FALSE(parseProgram("snfprog 1\nthreads 1\nslots 2\n"
                              "seed 0\ntx 1 commit 0\nend\n",
                              &q, &err));
    // Missing end marker (truncated repro).
    EXPECT_FALSE(parseProgram("snfprog 1\nthreads 1\nslots 2\n"
                              "seed 0\ntx 0 commit 0\n",
                              &q, &err));
    EXPECT_FALSE(err.empty());
}

TEST(Program, CorpusFilesLoadAndEmitBack)
{
    for (const char *name : {"basic", "abort", "wide"}) {
        Program p;
        std::string err;
        std::string path = std::string(SNF_CORPUS_DIR) + "/" + name +
                           ".snfprog";
        ASSERT_TRUE(loadProgramFile(path, &p, &err)) << err;
        Program q;
        ASSERT_TRUE(parseProgram(emitProgram(p), &q, &err)) << err;
        EXPECT_EQ(p, q) << name;
    }
}

TEST(Program, StoreOnlyProgramsStillEmitFormatOne)
{
    // Pre-shared-region repro files must stay byte-stable: private
    // store-only programs round-trip through format 1 exactly.
    Program p = twoThreadProgram();
    std::string text = emitProgram(p);
    EXPECT_EQ(text.rfind("snfprog 1\n", 0), 0u) << text;
    EXPECT_EQ(text.find("shared"), std::string::npos);
}

TEST(Program, SharedOpsAndLoadsRoundTripInFormatTwo)
{
    Program p = twoThreadProgram();
    p.sharedSlots = 2;
    p.txs[0].ops.push_back({1, 0x5, ProgOpKind::SharedStore});
    p.txs[0].ops.push_back({0, 0, ProgOpKind::SharedLoad});
    p.txs[1].ops.push_back({0, 0, ProgOpKind::Load});
    std::string text = emitProgram(p);
    EXPECT_EQ(text.rfind("snfprog 2\n", 0), 0u) << text;
    EXPECT_NE(text.find("shared 2\n"), std::string::npos);
    Program q;
    std::string err;
    ASSERT_TRUE(parseProgram(text, &q, &err)) << err;
    EXPECT_EQ(p, q);
    EXPECT_TRUE(q.hasConflicts());
    EXPECT_TRUE(q.hasLoads());
    // Shared slots live after every private partition.
    EXPECT_EQ(q.sharedGlobalSlot(0), q.privateSlots());
    EXPECT_EQ(q.totalSlots(), q.privateSlots() + 2);
}

// ---------------------------- oracle -----------------------------

TEST(ModelOracle, GoldenImageOfBasicCorpusProgram)
{
    Program p;
    std::string err;
    ASSERT_TRUE(loadProgramFile(
        std::string(SNF_CORPUS_DIR) + "/basic.snfprog", &p, &err))
        << err;
    ModelOracle o(p);
    EXPECT_EQ(o.committedCount(), 2u);
    std::vector<std::uint64_t> img = o.finalImage();
    ASSERT_EQ(img.size(), 4u);
    EXPECT_EQ(img[0], 0x20u);
    EXPECT_EQ(img[1], 0x11u);
    EXPECT_EQ(img[2], 0x12u);
    EXPECT_EQ(img[3], initValue(3));
}

TEST(ModelOracle, AbortedTransactionsLeaveNoTrace)
{
    Program p;
    std::string err;
    ASSERT_TRUE(loadProgramFile(
        std::string(SNF_CORPUS_DIR) + "/abort.snfprog", &p, &err))
        << err;
    ModelOracle o(p);
    EXPECT_EQ(o.committedCount(), 2u);
    std::vector<std::uint64_t> img = o.finalImage();
    EXPECT_EQ(img[0], 0xau);
    EXPECT_EQ(img[1], 0xbu);
    // No prefix image may contain the aborted tx's 0xdead values.
    for (std::size_t k = 0; k <= o.committedTxs(0).size(); ++k)
        for (std::uint64_t v : o.prefixImage(0, k))
            EXPECT_NE(v, 0xdeadu);
}

TEST(ModelOracle, PrefixImagesChainIncrementally)
{
    Program p = twoThreadProgram();
    ModelOracle o(p);
    ASSERT_EQ(o.committedTxs(0).size(), 1u);
    ASSERT_EQ(o.committedTxs(1).size(), 2u);
    // k=0 is the initial image.
    EXPECT_EQ(o.prefixImage(0, 0)[0], initValue(0));
    EXPECT_EQ(o.prefixImage(1, 0)[0], initValue(4));
    // Thread 1's two commits both hit its slot 0: 0xc then 0xd.
    EXPECT_EQ(o.prefixImage(1, 1)[0], 0xcu);
    EXPECT_EQ(o.prefixImage(1, 2)[0], 0xdu);
    EXPECT_EQ(o.prefixImage(1, 2)[3], 0xeu);
}

TEST(ModelOracle, MetamorphicCrossThreadCommutation)
{
    // Transactions of different threads touch disjoint partitions,
    // so swapping their program order must not change the final
    // image — the property that makes the differential well-defined
    // under arbitrary backend timing.
    Program p = twoThreadProgram();
    ModelOracle base(p);
    for (std::size_t i = 0; i + 1 < p.txs.size(); ++i) {
        if (p.txs[i].thread == p.txs[i + 1].thread)
            continue;
        Program q = p;
        std::swap(q.txs[i], q.txs[i + 1]);
        EXPECT_EQ(ModelOracle(q).finalImage(), base.finalImage())
            << "swap at " << i;
    }
}

// --------------------------- generator ---------------------------

TEST(ProgGen, DeterministicPerSeed)
{
    EXPECT_EQ(generateProgram(7), generateProgram(7));
    EXPECT_FALSE(generateProgram(7) == generateProgram(8));
}

TEST(ProgGen, ProgramsAreWellFormed)
{
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        Program p = generateProgram(seed);
        EXPECT_GE(p.threads, 1u);
        EXPECT_GE(p.slotsPerThread, 1u);
        EXPECT_FALSE(p.txs.empty());
        for (const ProgTx &tx : p.txs) {
            EXPECT_LT(tx.thread, p.threads);
            EXPECT_FALSE(tx.ops.empty());
            for (const ProgOp &op : tx.ops)
                EXPECT_LT(op.slot, op.isShared() ? p.sharedSlots
                                                 : p.slotsPerThread);
        }
        // Round-trips through the repro format.
        Program q;
        std::string err;
        ASSERT_TRUE(parseProgram(emitProgram(p), &q, &err)) << err;
        EXPECT_EQ(p, q);
    }
}

TEST(ProgGen, SomeSeedsAbortAndInterleave)
{
    bool sawAbort = false, sawMultiThread = false, sawDelay = false;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        Program p = generateProgram(seed);
        sawMultiThread |= p.threads > 1;
        for (const ProgTx &tx : p.txs) {
            sawAbort |= tx.aborts;
            sawDelay |= tx.delay != 0;
        }
    }
    EXPECT_TRUE(sawAbort);
    EXPECT_TRUE(sawMultiThread);
    EXPECT_TRUE(sawDelay);
}

namespace
{

/** Two txs contending on one shared slot; tx0 also reads it. */
Program
contendedProgram()
{
    Program p;
    p.threads = 2;
    p.slotsPerThread = 1;
    p.sharedSlots = 1;
    p.txs.push_back({0, false, 0,
                     {{0, 0, ProgOpKind::SharedLoad},
                      {0, 0xa1, ProgOpKind::SharedStore}}});
    p.txs.push_back({1, false, 4,
                     {{0, 0xb2, ProgOpKind::SharedStore}}});
    return p;
}

} // namespace

TEST(SerialOracle, ReplaysTheDurableCommitOrder)
{
    Program p = contendedProgram();
    std::uint32_t g = p.sharedGlobalSlot(0);
    // tx1's commit record hardened first: serial order is tx1, tx0.
    SerialOracle o(p, {{0, 20, 18}, {1, 10, 8}});
    ASSERT_EQ(o.order().size(), 2u);
    EXPECT_EQ(o.order()[0].txIndex, 1u);
    EXPECT_EQ(o.order()[1].txIndex, 0u);
    std::vector<std::uint64_t> img = o.finalImage();
    EXPECT_EQ(img[g], 0xa1u);

    std::string why;
    EXPECT_TRUE(o.checkFinalImage(img, &why)) << why;
    img[g] = 0xb2;
    EXPECT_FALSE(o.checkFinalImage(img, &why));
    EXPECT_NE(why.find("commit-order replay"), std::string::npos);
}

TEST(SerialOracle, CheckReadsRequiresPredecessorState)
{
    Program p = contendedProgram();
    std::string why;
    {
        // tx0 serialized first: its load must see the initial value.
        SerialOracle o(p, {{0, 10, 8}, {1, 20, 18}});
        EXPECT_TRUE(o.checkReads(
            0, {initValue(p.sharedGlobalSlot(0)), 0}, &why))
            << why;
        EXPECT_FALSE(o.checkReads(0, {0xb2, 0}, &why));
    }
    {
        // tx0 serialized second: its load must see tx1's 0xb2. A
        // stale initial-value read is the classic lost update.
        SerialOracle o(p, {{0, 20, 18}, {1, 10, 8}});
        EXPECT_TRUE(o.checkReads(0, {0xb2, 0}, &why)) << why;
        EXPECT_FALSE(o.checkReads(
            0, {initValue(p.sharedGlobalSlot(0)), 0}, &why));
        EXPECT_NE(why.find("loaded"), std::string::npos);
    }
}

TEST(SerialOracle, CrashImagesMustMatchSomeDepthCombination)
{
    Program p = contendedProgram();
    std::uint32_t g = p.sharedGlobalSlot(0);
    SerialOracle o(p, {{0, 20, 18}, {1, 10, 8}});

    std::vector<std::uint64_t> img(p.totalSlots());
    for (std::uint32_t i = 0; i < p.totalSlots(); ++i)
        img[i] = initValue(i);

    std::string why;
    // Before any commit record initiated: only the initial image.
    EXPECT_TRUE(o.checkCrashImage(img, 5, &why)) << why;
    img[g] = 0xb2;
    EXPECT_FALSE(o.checkCrashImage(img, 5, &why));

    // tx1 durable by 15, tx0 not yet initiated: exactly tx1's state.
    EXPECT_TRUE(o.checkCrashImage(img, 15, &why)) << why;
    img[g] = initValue(g);
    EXPECT_FALSE(o.checkCrashImage(img, 15, &why))
        << "a durable commit must not be lost";

    // tx0's record initiated but not durable at 19: both depths OK.
    img[g] = 0xb2;
    EXPECT_TRUE(o.checkCrashImage(img, 19, &why)) << why;
    img[g] = 0xa1;
    EXPECT_TRUE(o.checkCrashImage(img, 19, &why)) << why;
    img[g] = 0xdead;
    EXPECT_FALSE(o.checkCrashImage(img, 19, &why));
    EXPECT_NE(why.find("depth combinations"), std::string::npos);
}

TEST(ProgGen, DefaultConfigStaysConflictFree)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Program p = generateProgram(seed);
        EXPECT_FALSE(p.hasConflicts());
        EXPECT_FALSE(p.hasLoads());
        EXPECT_EQ(emitProgram(p).rfind("snfprog 1\n", 0), 0u);
    }
}

TEST(ProgGen, ConflictRateProducesSharedOpsAndLoads)
{
    ProgGenConfig gen;
    gen.conflictRate = 0.5;
    std::size_t sharedStores = 0, sharedLoads = 0, privateOps = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Program p = generateProgram(seed, gen);
        EXPECT_TRUE(p.hasConflicts());
        EXPECT_GE(p.sharedSlots, 2u);
        for (const ProgTx &tx : p.txs) {
            for (const ProgOp &op : tx.ops) {
                if (op.kind == ProgOpKind::SharedStore)
                    ++sharedStores;
                else if (op.kind == ProgOpKind::SharedLoad)
                    ++sharedLoads;
                else
                    ++privateOps;
            }
        }
        // Conflict structure survives the repro round-trip.
        Program q;
        std::string err;
        ASSERT_TRUE(parseProgram(emitProgram(p), &q, &err)) << err;
        EXPECT_EQ(p, q);
    }
    EXPECT_GT(sharedStores, 0u);
    EXPECT_GT(sharedLoads, 0u);
    EXPECT_GT(privateOps, 0u);
}

// -------------------------- differential -------------------------

TEST(DiffRun, SeededProgramsAgreeAcrossBackends)
{
    for (std::uint64_t seed : {1, 2, 3}) {
        DiffConfig cfg;
        cfg.maxCrashPoints = 8; // keep the unit test quick
        DiffResult r = runDiff(generateProgram(seed), cfg);
        EXPECT_TRUE(r.passed) << "seed " << seed << ": " << r.detail;
        EXPECT_GT(r.crashPointsChecked, 0u);
    }
}

TEST(DiffRun, CorpusProgramsAgreeAcrossBackends)
{
    for (const char *name : {"basic", "abort", "wide"}) {
        Program p;
        std::string err;
        ASSERT_TRUE(loadProgramFile(std::string(SNF_CORPUS_DIR) +
                                        "/" + name + ".snfprog",
                                    &p, &err))
            << err;
        DiffResult r = runDiff(p, DiffConfig{});
        EXPECT_TRUE(r.passed) << name << ": " << r.detail;
    }
}

TEST(DiffRun, CatchesSkippedRedoAndShrinksToTrivialRepro)
{
    // The acceptance self-test: sabotage the hardware backend's
    // recovery (skip the redo phase — under no-force a durable
    // commit's data is still volatile, so recovery silently loses
    // it) and require the differential to catch it and the shrinker
    // to minimize the failure to a near-minimal program.
    DiffConfig cfg;
    cfg.hwRecovery.faultSkipRedo = true;
    cfg.maxCrashPoints = 8;

    Program failing;
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
        Program p = generateProgram(seed);
        if (!runDiff(p, cfg).passed) {
            failing = p;
            found = true;
        }
    }
    ASSERT_TRUE(found) << "injected bug must be detectable";

    ShrinkStats stats;
    Program minimal = shrinkProgram(
        failing,
        [&](const Program &cand) { return !runDiff(cand, cfg).passed; },
        ShrinkOptions{}, &stats);
    EXPECT_FALSE(runDiff(minimal, cfg).passed);
    EXPECT_LE(minimal.operationCount(), 5u)
        << "shrink left " << minimal.operationCount()
        << " operations after " << stats.evals << " evaluations";
    // And the repro replays: a healthy recovery passes it.
    EXPECT_TRUE(runDiff(minimal, DiffConfig{}).passed);
}

TEST(DiffRun, ConflictProgramsSerializeUnderBothCcSchemes)
{
    ProgGenConfig gen;
    gen.conflictRate = 0.5;
    for (CcMode cc : {CcMode::TwoPhase, CcMode::Tl2}) {
        for (std::uint64_t seed : {1, 2, 3}) {
            Program p = generateProgram(seed, gen);
            ASSERT_TRUE(p.hasConflicts());
            DiffConfig cfg;
            cfg.ccMode = cc;
            cfg.maxCrashPoints = 6; // keep the unit test quick
            DiffResult r = runDiff(p, cfg);
            EXPECT_TRUE(r.passed) << ccModeName(cc) << " seed "
                                  << seed << ": " << r.detail;
            EXPECT_GT(r.crashPointsChecked, 0u);
        }
    }
}

TEST(DiffRun, HandCraftedContentionAgreesUnderBothCcSchemes)
{
    Program p = contendedProgram();
    for (CcMode cc : {CcMode::TwoPhase, CcMode::Tl2}) {
        DiffConfig cfg;
        cfg.ccMode = cc;
        cfg.maxCrashPoints = 8;
        DiffResult r = runDiff(p, cfg);
        EXPECT_TRUE(r.passed) << ccModeName(cc) << ": " << r.detail;
    }
}

TEST(DiffRun, CatchesLostUpdateAndShrinksTheConflict)
{
    // The serializability-oracle self-test: a reader transaction
    // stretched across a writer's commit, run with CC disabled
    // (--inject-lost-update), reads state inconsistent with its
    // position in the durable commit order. The oracle must flag it
    // and the shrinker must keep the conflict while discarding the
    // noise.
    const char *text = "snfprog 2\n"
                       "threads 2\n"
                       "slots 1\n"
                       "shared 1\n"
                       "seed 0\n"
                       "tx 0 commit 0\n"
                       "  sload 0\n"
                       "  store 0 0x1\n"
                       "  store 0 0x2\n"
                       "  store 0 0x3\n"
                       "  store 0 0x4\n"
                       "  store 0 0x5\n"
                       "  store 0 0x6\n"
                       "  sstore 0 0xa1\n"
                       "tx 1 commit 2\n"
                       "  sstore 0 0xb2\n"
                       "end\n";
    Program p;
    std::string err;
    ASSERT_TRUE(parseProgram(text, &p, &err)) << err;

    DiffConfig cfg;
    cfg.injectLostUpdate = true;
    cfg.crashDifferential = false; // the reads check is the point
    DiffResult r = runDiff(p, cfg);
    ASSERT_FALSE(r.passed) << "lost update must be detected";
    EXPECT_NE(r.detail.find("loaded"), std::string::npos)
        << r.detail;

    ShrinkStats stats;
    Program minimal = shrinkProgram(
        p,
        [&](const Program &cand) {
            return !runDiff(cand, cfg).passed;
        },
        ShrinkOptions{}, &stats);
    EXPECT_FALSE(runDiff(minimal, cfg).passed);
    EXPECT_TRUE(minimal.hasConflicts())
        << "the shared-slot conflict is the bug; it must survive";
    EXPECT_LE(minimal.operationCount(), 10u)
        << "shrink left " << minimal.operationCount()
        << " operations after " << stats.evals << " evaluations";

    // Under real concurrency control the same program is clean.
    for (CcMode cc : {CcMode::TwoPhase, CcMode::Tl2}) {
        DiffConfig clean;
        clean.ccMode = cc;
        clean.crashDifferential = false;
        DiffResult ok = runDiff(p, clean);
        EXPECT_TRUE(ok.passed) << ccModeName(cc) << ": "
                               << ok.detail;
    }
}

// --------------------------- shrinker ----------------------------

TEST(Shrink, ReducesToTheCulpritTransaction)
{
    // Predicate: "fails" iff the program still stores 0x666 on
    // thread 0. Everything else must be stripped.
    Program p = generateProgram(5);
    p.txs.push_back({0, false, 17, {{0, 0x666}, {1, 0x42}}});
    auto hasPoison = [](const Program &cand) {
        for (const ProgTx &tx : cand.txs)
            for (const ProgOp &op : tx.ops)
                if (op.value == 0x666)
                    return true;
        return false;
    };
    ShrinkStats stats;
    Program minimal = shrinkProgram(p, hasPoison, ShrinkOptions{},
                                    &stats);
    EXPECT_TRUE(hasPoison(minimal));
    EXPECT_EQ(minimal.txs.size(), 1u);
    ASSERT_EQ(minimal.txs[0].ops.size(), 1u);
    EXPECT_EQ(minimal.txs[0].ops[0].value, 0x666u);
    EXPECT_EQ(minimal.txs[0].delay, 0u);
    EXPECT_EQ(minimal.threads, 1u);
    EXPECT_EQ(minimal.operationCount(), 3u);
    EXPECT_GT(stats.evals, 0u);
}

TEST(Shrink, HonorsEvaluationBudget)
{
    Program p = generateProgram(6);
    ShrinkOptions opts;
    opts.maxEvals = 3;
    ShrinkStats stats;
    shrinkProgram(
        p, [](const Program &) { return true; }, opts, &stats);
    EXPECT_TRUE(stats.budgetExhausted);
}

// ----------------------- workload adapter ------------------------

TEST(ProgWorkload, RunsUnderDriverInBothBackends)
{
    for (PersistMode mode :
         {PersistMode::Fwb, PersistMode::UndoClwb}) {
        workloads::RunSpec spec;
        spec.workload = "prog";
        spec.mode = mode;
        spec.params.threads = 2;
        spec.params.seed = 12;
        spec.sys = SystemConfig::scaled(2);
        auto o = workloads::runWorkload(spec);
        EXPECT_TRUE(o.verified)
            << persistModeName(mode) << ": " << o.verifyMessage;
        EXPECT_GT(o.stats.committedTx, 0u);
    }
}

TEST(ProgWorkload, ContendedProgramsRunUnderBothCcSchemes)
{
    for (CcMode cc : {CcMode::TwoPhase, CcMode::Tl2}) {
        std::uint64_t committed = 0;
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            workloads::RunSpec spec;
            spec.workload = "prog";
            spec.mode = PersistMode::Fwb;
            spec.params.threads = 2;
            spec.params.seed = seed;
            spec.params.conflictRate = 0.6;
            spec.sys = SystemConfig::scaled(2);
            spec.sys.persist.ccMode = cc;
            auto o = workloads::runWorkload(spec);
            EXPECT_TRUE(o.verified) << ccModeName(cc) << " seed "
                                    << seed << ": "
                                    << o.verifyMessage;
            committed += o.stats.committedTx;
        }
        EXPECT_GT(committed, 0u) << ccModeName(cc);
    }
}

TEST(ProgWorkload, CrashRecoverVerifyRoundTrip)
{
    workloads::RunSpec spec;
    spec.workload = "prog";
    spec.mode = PersistMode::Fwb;
    spec.params.threads = 2;
    spec.params.seed = 12;
    spec.sys = SystemConfig::scaled(2);
    spec.sys.persist.crashJournal = true;
    spec.crashAt = 4000;
    auto o = workloads::runWorkload(spec);
    EXPECT_TRUE(o.crashed);
    EXPECT_TRUE(o.verified) << o.verifyMessage;
}
