/**
 * @file
 * Tests for conformlab: the `.snfprog` program representation and
 * serialization, the seeded program generator, the pure model oracle
 * (golden images and metamorphic commutation), the three-way
 * differential runner, and the program shrinker (including the
 * end-to-end self-test: an injected recovery bug must be caught and
 * minimized to a trivial repro).
 */

#include <gtest/gtest.h>

#include <string>

#include "conformlab/diffrun.hh"
#include "conformlab/oracle.hh"
#include "conformlab/proggen.hh"
#include "conformlab/program.hh"
#include "conformlab/shrink.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::conformlab;

#ifndef SNF_CORPUS_DIR
#define SNF_CORPUS_DIR "tests/corpus"
#endif

namespace
{

Program
twoThreadProgram()
{
    Program p;
    p.threads = 2;
    p.slotsPerThread = 4;
    p.txs.push_back({0, false, 0, {{0, 0xa}, {1, 0xb}}});
    p.txs.push_back({1, false, 3, {{0, 0xc}}});
    p.txs.push_back({0, true, 0, {{2, 0xdead}}});
    p.txs.push_back({1, false, 0, {{0, 0xd}, {3, 0xe}}});
    return p;
}

} // namespace

// ------------------------ representation -------------------------

TEST(Program, EmitParseRoundTrip)
{
    Program p = twoThreadProgram();
    p.seed = 99;
    Program q;
    std::string err;
    ASSERT_TRUE(parseProgram(emitProgram(p), &q, &err)) << err;
    EXPECT_EQ(p, q);
    EXPECT_EQ(q.seed, 99u);
    // The emission itself is deterministic (repro files are diffable).
    EXPECT_EQ(emitProgram(p), emitProgram(q));
}

TEST(Program, ParseRejectsMalformedDocuments)
{
    Program q;
    std::string err;
    EXPECT_FALSE(parseProgram("", &q, &err));
    EXPECT_FALSE(parseProgram("snfprog 2\nthreads 1\nslots 1\nend\n",
                              &q, &err))
        << "unknown version must be rejected";
    // Store outside the owning thread's partition.
    EXPECT_FALSE(parseProgram("snfprog 1\nthreads 1\nslots 2\n"
                              "seed 0\ntx 0 commit 0\n"
                              "  store 2 0x1\nend\n",
                              &q, &err));
    // Transaction on a nonexistent thread.
    EXPECT_FALSE(parseProgram("snfprog 1\nthreads 1\nslots 2\n"
                              "seed 0\ntx 1 commit 0\nend\n",
                              &q, &err));
    // Missing end marker (truncated repro).
    EXPECT_FALSE(parseProgram("snfprog 1\nthreads 1\nslots 2\n"
                              "seed 0\ntx 0 commit 0\n",
                              &q, &err));
    EXPECT_FALSE(err.empty());
}

TEST(Program, CorpusFilesLoadAndEmitBack)
{
    for (const char *name : {"basic", "abort", "wide"}) {
        Program p;
        std::string err;
        std::string path = std::string(SNF_CORPUS_DIR) + "/" + name +
                           ".snfprog";
        ASSERT_TRUE(loadProgramFile(path, &p, &err)) << err;
        Program q;
        ASSERT_TRUE(parseProgram(emitProgram(p), &q, &err)) << err;
        EXPECT_EQ(p, q) << name;
    }
}

// ---------------------------- oracle -----------------------------

TEST(ModelOracle, GoldenImageOfBasicCorpusProgram)
{
    Program p;
    std::string err;
    ASSERT_TRUE(loadProgramFile(
        std::string(SNF_CORPUS_DIR) + "/basic.snfprog", &p, &err))
        << err;
    ModelOracle o(p);
    EXPECT_EQ(o.committedCount(), 2u);
    std::vector<std::uint64_t> img = o.finalImage();
    ASSERT_EQ(img.size(), 4u);
    EXPECT_EQ(img[0], 0x20u);
    EXPECT_EQ(img[1], 0x11u);
    EXPECT_EQ(img[2], 0x12u);
    EXPECT_EQ(img[3], initValue(3));
}

TEST(ModelOracle, AbortedTransactionsLeaveNoTrace)
{
    Program p;
    std::string err;
    ASSERT_TRUE(loadProgramFile(
        std::string(SNF_CORPUS_DIR) + "/abort.snfprog", &p, &err))
        << err;
    ModelOracle o(p);
    EXPECT_EQ(o.committedCount(), 2u);
    std::vector<std::uint64_t> img = o.finalImage();
    EXPECT_EQ(img[0], 0xau);
    EXPECT_EQ(img[1], 0xbu);
    // No prefix image may contain the aborted tx's 0xdead values.
    for (std::size_t k = 0; k <= o.committedTxs(0).size(); ++k)
        for (std::uint64_t v : o.prefixImage(0, k))
            EXPECT_NE(v, 0xdeadu);
}

TEST(ModelOracle, PrefixImagesChainIncrementally)
{
    Program p = twoThreadProgram();
    ModelOracle o(p);
    ASSERT_EQ(o.committedTxs(0).size(), 1u);
    ASSERT_EQ(o.committedTxs(1).size(), 2u);
    // k=0 is the initial image.
    EXPECT_EQ(o.prefixImage(0, 0)[0], initValue(0));
    EXPECT_EQ(o.prefixImage(1, 0)[0], initValue(4));
    // Thread 1's two commits both hit its slot 0: 0xc then 0xd.
    EXPECT_EQ(o.prefixImage(1, 1)[0], 0xcu);
    EXPECT_EQ(o.prefixImage(1, 2)[0], 0xdu);
    EXPECT_EQ(o.prefixImage(1, 2)[3], 0xeu);
}

TEST(ModelOracle, MetamorphicCrossThreadCommutation)
{
    // Transactions of different threads touch disjoint partitions,
    // so swapping their program order must not change the final
    // image — the property that makes the differential well-defined
    // under arbitrary backend timing.
    Program p = twoThreadProgram();
    ModelOracle base(p);
    for (std::size_t i = 0; i + 1 < p.txs.size(); ++i) {
        if (p.txs[i].thread == p.txs[i + 1].thread)
            continue;
        Program q = p;
        std::swap(q.txs[i], q.txs[i + 1]);
        EXPECT_EQ(ModelOracle(q).finalImage(), base.finalImage())
            << "swap at " << i;
    }
}

// --------------------------- generator ---------------------------

TEST(ProgGen, DeterministicPerSeed)
{
    EXPECT_EQ(generateProgram(7), generateProgram(7));
    EXPECT_FALSE(generateProgram(7) == generateProgram(8));
}

TEST(ProgGen, ProgramsAreWellFormed)
{
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        Program p = generateProgram(seed);
        EXPECT_GE(p.threads, 1u);
        EXPECT_GE(p.slotsPerThread, 1u);
        EXPECT_FALSE(p.txs.empty());
        for (const ProgTx &tx : p.txs) {
            EXPECT_LT(tx.thread, p.threads);
            EXPECT_FALSE(tx.stores.empty());
            for (const ProgStore &st : tx.stores)
                EXPECT_LT(st.slot, p.slotsPerThread);
        }
        // Round-trips through the repro format.
        Program q;
        std::string err;
        ASSERT_TRUE(parseProgram(emitProgram(p), &q, &err)) << err;
        EXPECT_EQ(p, q);
    }
}

TEST(ProgGen, SomeSeedsAbortAndInterleave)
{
    bool sawAbort = false, sawMultiThread = false, sawDelay = false;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        Program p = generateProgram(seed);
        sawMultiThread |= p.threads > 1;
        for (const ProgTx &tx : p.txs) {
            sawAbort |= tx.aborts;
            sawDelay |= tx.delay != 0;
        }
    }
    EXPECT_TRUE(sawAbort);
    EXPECT_TRUE(sawMultiThread);
    EXPECT_TRUE(sawDelay);
}

// -------------------------- differential -------------------------

TEST(DiffRun, SeededProgramsAgreeAcrossBackends)
{
    for (std::uint64_t seed : {1, 2, 3}) {
        DiffConfig cfg;
        cfg.maxCrashPoints = 8; // keep the unit test quick
        DiffResult r = runDiff(generateProgram(seed), cfg);
        EXPECT_TRUE(r.passed) << "seed " << seed << ": " << r.detail;
        EXPECT_GT(r.crashPointsChecked, 0u);
    }
}

TEST(DiffRun, CorpusProgramsAgreeAcrossBackends)
{
    for (const char *name : {"basic", "abort", "wide"}) {
        Program p;
        std::string err;
        ASSERT_TRUE(loadProgramFile(std::string(SNF_CORPUS_DIR) +
                                        "/" + name + ".snfprog",
                                    &p, &err))
            << err;
        DiffResult r = runDiff(p, DiffConfig{});
        EXPECT_TRUE(r.passed) << name << ": " << r.detail;
    }
}

TEST(DiffRun, CatchesSkippedRedoAndShrinksToTrivialRepro)
{
    // The acceptance self-test: sabotage the hardware backend's
    // recovery (skip the redo phase — under no-force a durable
    // commit's data is still volatile, so recovery silently loses
    // it) and require the differential to catch it and the shrinker
    // to minimize the failure to a near-minimal program.
    DiffConfig cfg;
    cfg.hwRecovery.faultSkipRedo = true;
    cfg.maxCrashPoints = 8;

    Program failing;
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
        Program p = generateProgram(seed);
        if (!runDiff(p, cfg).passed) {
            failing = p;
            found = true;
        }
    }
    ASSERT_TRUE(found) << "injected bug must be detectable";

    ShrinkStats stats;
    Program minimal = shrinkProgram(
        failing,
        [&](const Program &cand) { return !runDiff(cand, cfg).passed; },
        ShrinkOptions{}, &stats);
    EXPECT_FALSE(runDiff(minimal, cfg).passed);
    EXPECT_LE(minimal.operationCount(), 5u)
        << "shrink left " << minimal.operationCount()
        << " operations after " << stats.evals << " evaluations";
    // And the repro replays: a healthy recovery passes it.
    EXPECT_TRUE(runDiff(minimal, DiffConfig{}).passed);
}

// --------------------------- shrinker ----------------------------

TEST(Shrink, ReducesToTheCulpritTransaction)
{
    // Predicate: "fails" iff the program still stores 0x666 on
    // thread 0. Everything else must be stripped.
    Program p = generateProgram(5);
    p.txs.push_back({0, false, 17, {{0, 0x666}, {1, 0x42}}});
    auto hasPoison = [](const Program &cand) {
        for (const ProgTx &tx : cand.txs)
            for (const ProgStore &st : tx.stores)
                if (st.value == 0x666)
                    return true;
        return false;
    };
    ShrinkStats stats;
    Program minimal = shrinkProgram(p, hasPoison, ShrinkOptions{},
                                    &stats);
    EXPECT_TRUE(hasPoison(minimal));
    EXPECT_EQ(minimal.txs.size(), 1u);
    ASSERT_EQ(minimal.txs[0].stores.size(), 1u);
    EXPECT_EQ(minimal.txs[0].stores[0].value, 0x666u);
    EXPECT_EQ(minimal.txs[0].delay, 0u);
    EXPECT_EQ(minimal.threads, 1u);
    EXPECT_EQ(minimal.operationCount(), 3u);
    EXPECT_GT(stats.evals, 0u);
}

TEST(Shrink, HonorsEvaluationBudget)
{
    Program p = generateProgram(6);
    ShrinkOptions opts;
    opts.maxEvals = 3;
    ShrinkStats stats;
    shrinkProgram(
        p, [](const Program &) { return true; }, opts, &stats);
    EXPECT_TRUE(stats.budgetExhausted);
}

// ----------------------- workload adapter ------------------------

TEST(ProgWorkload, RunsUnderDriverInBothBackends)
{
    for (PersistMode mode :
         {PersistMode::Fwb, PersistMode::UndoClwb}) {
        workloads::RunSpec spec;
        spec.workload = "prog";
        spec.mode = mode;
        spec.params.threads = 2;
        spec.params.seed = 12;
        spec.sys = SystemConfig::scaled(2);
        auto o = workloads::runWorkload(spec);
        EXPECT_TRUE(o.verified)
            << persistModeName(mode) << ": " << o.verifyMessage;
        EXPECT_GT(o.stats.committedTx, 0u);
    }
}

TEST(ProgWorkload, CrashRecoverVerifyRoundTrip)
{
    workloads::RunSpec spec;
    spec.workload = "prog";
    spec.mode = PersistMode::Fwb;
    spec.params.threads = 2;
    spec.params.seed = 12;
    spec.sys = SystemConfig::scaled(2);
    spec.sys.persist.crashJournal = true;
    spec.crashAt = 4000;
    auto o = workloads::runWorkload(spec);
    EXPECT_TRUE(o.crashed);
    EXPECT_TRUE(o.verified) << o.verifyMessage;
}
