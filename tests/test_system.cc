/**
 * @file
 * Integration tests of the System facade and the thread API:
 * transaction semantics per mode, instruction accounting, instant
 * commits under FWB, locks and CAS, multi-word transfers, crash
 * snapshots, and end-to-end recovery of a hand-built transaction.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/system.hh"
#include "persist/recovery.hh"

using namespace snf;

namespace
{

struct Env
{
    SystemConfig cfg;
    System sys;
    Addr a;

    explicit Env(PersistMode mode, std::uint32_t cores = 2,
                 bool journal = false)
        : cfg(makeCfg(cores, journal)), sys(cfg, mode),
          a(sys.heap().alloc(4096, 64))
    {
    }

    static SystemConfig
    makeCfg(std::uint32_t cores, bool journal)
    {
        SystemConfig c = SystemConfig::scaled(cores);
        c.persist.crashJournal = journal;
        return c;
    }
};

sim::Co<void>
incrementLoop(Thread &t, Addr addr, int iters)
{
    for (int i = 0; i < iters; ++i) {
        co_await t.txBegin();
        std::uint64_t v = co_await t.load64(addr);
        co_await t.store64(addr, v + 1);
        co_await t.txCommit();
    }
}

sim::Co<void>
lockedIncrement(Thread &t, Addr lock, Addr addr, int iters)
{
    for (int i = 0; i < iters; ++i) {
        co_await t.lockAcquire(lock);
        co_await t.txBegin();
        std::uint64_t v = co_await t.load64(addr);
        co_await t.compute(5);
        co_await t.store64(addr, v + 1);
        co_await t.txCommit();
        co_await t.lockRelease(lock);
    }
}

sim::Co<void>
bytesRoundTrip(Thread &t, Addr addr, bool *ok)
{
    std::uint8_t in[100];
    for (std::size_t i = 0; i < sizeof(in); ++i)
        in[i] = static_cast<std::uint8_t>(i * 3 + 1);
    co_await t.txBegin();
    co_await t.storeBytes(addr + 4, in, sizeof(in)); // unaligned
    co_await t.txCommit();
    std::uint8_t out[100] = {};
    co_await t.loadBytes(addr + 4, out, sizeof(out));
    *ok = std::equal(in, in + sizeof(in), out);
}

sim::Co<void>
openForever(Thread &t, Addr addr)
{
    co_await t.txBegin();
    co_await t.store64(addr, 0xbad);
    co_await t.clwb(addr); // steal the line into NVRAM
    co_await t.fence();
    co_await t.compute(1000000); // never commits before crash
    co_await t.txCommit();
}

} // namespace

TEST(SystemFacade, RunsSingleTransaction)
{
    Env env(PersistMode::Fwb);
    env.sys.spawn(0, [&](Thread &t) {
        return incrementLoop(t, env.a, 1);
    });
    Tick end = env.sys.run();
    EXPECT_GT(end, 0u);
    EXPECT_EQ(env.sys.txns().committed.value(), 1u);
    EXPECT_EQ(env.sys.heap().peek64(env.a), 0u); // still cached
    env.sys.flushAll(end);
    EXPECT_EQ(env.sys.heap().peek64(env.a), 1u);
}

TEST(SystemFacade, StatsAggregateInstructionClasses)
{
    Env env(PersistMode::UndoClwb);
    env.sys.spawn(0, [&](Thread &t) {
        return incrementLoop(t, env.a, 10);
    });
    Tick end = env.sys.run();
    RunStats s = env.sys.collectStats(end);
    EXPECT_EQ(s.committedTx, 10u);
    EXPECT_EQ(s.instr.loads, 10u + s.instr.logLoads * 0); // 10 loads
    EXPECT_GT(s.instr.logStores, 0u);
    EXPECT_GT(s.instr.logLoads, 0u);
    EXPECT_GT(s.instr.clwbs, 0u);
    EXPECT_GT(s.instr.fences, 0u);
    EXPECT_GT(s.instr.txOverhead, 0u);
}

TEST(SystemFacade, FwbCommitInjectsNoFlushInstructions)
{
    Env env(PersistMode::Fwb);
    env.sys.spawn(0, [&](Thread &t) {
        return incrementLoop(t, env.a, 20);
    });
    Tick end = env.sys.run();
    RunStats s = env.sys.collectStats(end);
    // Instant commit: no clwb, no fences, no logging instructions.
    EXPECT_EQ(s.instr.clwbs, 0u);
    EXPECT_EQ(s.instr.fences, 0u);
    EXPECT_EQ(s.instr.logStores, 0u);
    EXPECT_EQ(s.instr.logLoads, 0u);
    // But the hardware wrote update + commit records.
    EXPECT_EQ(s.logRecords, 20u * 2);
}

TEST(SystemFacade, HwlFlushesWriteSetWithClwb)
{
    Env env(PersistMode::Hwl);
    env.sys.spawn(0, [&](Thread &t) {
        return incrementLoop(t, env.a, 5);
    });
    Tick end = env.sys.run();
    RunStats s = env.sys.collectStats(end);
    EXPECT_EQ(s.instr.clwbs, 5u); // one line per transaction
    EXPECT_EQ(s.instr.logStores, 0u);
}

TEST(SystemFacade, SoftwareLoggingInflatesInstructions)
{
    std::uint64_t base_instr = 0;
    {
        Env env(PersistMode::NonPers);
        env.sys.spawn(0, [&](Thread &t) {
            return incrementLoop(t, env.a, 50);
        });
        base_instr =
            env.sys.collectStats(env.sys.run()).instr.total;
    }
    Env env(PersistMode::UndoClwb);
    env.sys.spawn(0, [&](Thread &t) {
        return incrementLoop(t, env.a, 50);
    });
    std::uint64_t sw_instr =
        env.sys.collectStats(env.sys.run()).instr.total;
    EXPECT_GT(sw_instr, base_instr * 3 / 2); // well above 1.5x
}

TEST(SystemFacade, LocksSerializeConflictingThreads)
{
    Env env(PersistMode::Fwb, 4);
    Addr lock = env.sys.dramHeap().alloc(8, 64);
    for (CoreId c = 0; c < 4; ++c) {
        env.sys.spawn(c, [&](Thread &t) {
            return lockedIncrement(t, lock, env.a, 25);
        });
    }
    Tick end = env.sys.run();
    env.sys.flushAll(end);
    EXPECT_EQ(env.sys.heap().peek64(env.a), 100u);
}

TEST(SystemFacade, UnlockedRacesLoseUpdates)
{
    // Negative control: without locks, read-modify-write races drop
    // increments, proving the scheduler interleaves at op level.
    Env env(PersistMode::NonPers, 4);
    for (CoreId c = 0; c < 4; ++c) {
        env.sys.spawn(c, [&](Thread &t) {
            return incrementLoop(t, env.a, 50);
        });
    }
    Tick end = env.sys.run();
    env.sys.flushAll(end);
    EXPECT_LT(env.sys.heap().peek64(env.a), 200u);
}

TEST(SystemFacade, StoreBytesLoadBytesRoundTrip)
{
    Env env(PersistMode::Fwb);
    bool ok = false;
    env.sys.spawn(0, [&](Thread &t) {
        return bytesRoundTrip(t, env.a + 256, &ok);
    });
    env.sys.run();
    EXPECT_TRUE(ok);
}

TEST(SystemFacade, CrashSnapshotExcludesVolatileState)
{
    Env env(PersistMode::Fwb, 1, /*journal=*/true);
    env.sys.spawn(0, [&](Thread &t) {
        return incrementLoop(t, env.a, 1);
    });
    Tick end = env.sys.run();
    // Without a flush the counter update may still be cached; the
    // snapshot sees only what reached NVRAM by `end`.
    mem::BackingStore snap = env.sys.crashSnapshot(end);
    EXPECT_EQ(snap.read64(env.a), 0u);
    // But the log records did reach NVRAM; recovery redoes them.
    auto report = persist::Recovery::run(snap, env.cfg.map);
    EXPECT_EQ(report.committedTxns, 1u);
    EXPECT_EQ(snap.read64(env.a), 1u);
}

TEST(SystemFacade, RecoveryUndoesUncommittedAtCrash)
{
    Env env(PersistMode::Fwb, 1, /*journal=*/true);
    // A transaction that stays open forever (simulates crashing
    // mid-transaction).
    env.sys.spawn(0, [a8 = env.a + 8](Thread &t) {
        return openForever(t, a8);
    });
    Tick crash = 50000;
    env.sys.run(crash);
    mem::BackingStore snap = env.sys.crashSnapshot(crash);
    EXPECT_EQ(snap.read64(env.a + 8), 0xbadu); // stolen
    auto report = persist::Recovery::run(snap, env.cfg.map);
    EXPECT_EQ(report.uncommittedTxns, 1u);
    EXPECT_EQ(snap.read64(env.a + 8), 0u); // rolled back
}

TEST(SystemFacade, OrderInvariantHoldsUnderLoad)
{
    Env env(PersistMode::Fwb, 4);
    for (CoreId c = 0; c < 4; ++c) {
        env.sys.spawn(c, [&, c](Thread &t) {
            return incrementLoop(t, env.a + 512 + c * 512, 200);
        });
    }
    Tick end = env.sys.run();
    RunStats s = env.sys.collectStats(end);
    EXPECT_EQ(s.orderViolations, 0u);
    EXPECT_EQ(s.overwriteHazards, 0u);
}

TEST(SystemFacade, DumpStatsMentionsComponents)
{
    Env env(PersistMode::Fwb);
    env.sys.spawn(0, [&](Thread &t) {
        return incrementLoop(t, env.a, 2);
    });
    env.sys.run();
    std::ostringstream os;
    env.sys.dumpStats(os);
    for (const char *key :
         {"mem.l1.0.hits", "mem.nvram.writes", "log.appends",
          "hwl.update_records", "fwb.scans", "txn.committed"})
        EXPECT_NE(os.str().find(key), std::string::npos) << key;
}

TEST(SystemFacade, ScaledAndPaperPresetsRun)
{
    for (auto make : {&SystemConfig::paper, &SystemConfig::scaled}) {
        SystemConfig cfg = make(2);
        System sys(cfg, PersistMode::Fwb);
        Addr a = sys.heap().alloc(64, 64);
        sys.spawn(0,
                  [&](Thread &t) { return incrementLoop(t, a, 3); });
        Tick end = sys.run();
        EXPECT_GT(end, 0u);
        EXPECT_EQ(sys.txns().committed.value(), 3u);
    }
}

TEST(BumpAllocator, AlignsAndAdvances)
{
    BumpAllocator heap(0x1000, 0x1000);
    Addr a = heap.alloc(10, 8);
    Addr b = heap.alloc(1, 64);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GT(b, a);
    EXPECT_GE(heap.allocated(), 11u);
    heap.reset();
    EXPECT_EQ(heap.allocated(), 0u);
}
