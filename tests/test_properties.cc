/**
 * @file
 * Property-style tests (parameterized sweeps over seeds and crash
 * points) of the system's consistency invariants:
 *
 * I1/I2 (steal + no-force): for ANY crash instant under fwb/hwl, the
 * recovered image passes the workload's structural check.
 * I3: log-before-data order violations are always zero for hardware
 * logging with the MC FIFO.
 * I4: no live log entry is overwritten while its data is volatile.
 * I6: recovery is idempotent.
 */

#include <gtest/gtest.h>

#include "persist/recovery.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::workloads;

namespace
{

RunSpec
propSpec(const std::string &wl, PersistMode mode, std::uint64_t seed)
{
    RunSpec spec;
    spec.workload = wl;
    spec.mode = mode;
    spec.params.threads = 2;
    spec.params.txPerThread = 150;
    spec.params.footprint = 256;
    spec.params.seed = seed;
    spec.sys = SystemConfig::scaled(2);
    return spec;
}

} // namespace

// --------- property: consistency across random seeds ------------

using SeedCell = std::tuple<std::string, std::uint64_t>;

class SeedSweep : public ::testing::TestWithParam<SeedCell>
{
};

TEST_P(SeedSweep, FwbConsistentForAnySeed)
{
    auto [wl, seed] = GetParam();
    auto outcome = runWorkload(propSpec(wl, PersistMode::Fwb, seed));
    EXPECT_TRUE(outcome.verified) << outcome.verifyMessage;
    EXPECT_EQ(outcome.stats.orderViolations, 0u);
    EXPECT_EQ(outcome.stats.overwriteHazards, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SeedSweep,
    ::testing::Combine(::testing::Values("hash", "rbtree", "btree",
                                         "ctree", "vacation"),
                       ::testing::Values(11u, 23u, 37u, 51u)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

// --------- property: crash anywhere, recover consistent ---------

class CrashSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CrashSweep, HashRecoversFromAnyCrashPoint)
{
    RunSpec spec = propSpec("hash", PersistMode::Fwb, 5);
    spec.params.txPerThread = 2000;
    spec.sys.persist.crashJournal = true;
    spec.crashAt = 20000 + GetParam() * 13777;
    auto outcome = runWorkload(spec);
    EXPECT_TRUE(outcome.verified)
        << "crash@" << *spec.crashAt << ": "
        << outcome.verifyMessage;
}

TEST_P(CrashSweep, TpccRecoversFromAnyCrashPoint)
{
    RunSpec spec = propSpec("tpcc", PersistMode::Fwb, 5);
    spec.params.txPerThread = 500;
    spec.sys.persist.crashJournal = true;
    spec.crashAt = 20000 + GetParam() * 17321;
    auto outcome = runWorkload(spec);
    EXPECT_TRUE(outcome.verified)
        << "crash@" << *spec.crashAt << ": "
        << outcome.verifyMessage;
}

TEST_P(CrashSweep, RbtreeRecoversUnderUndoClwb)
{
    RunSpec spec = propSpec("rbtree", PersistMode::UndoClwb, 5);
    spec.params.txPerThread = 1000;
    spec.sys.persist.crashJournal = true;
    spec.crashAt = 20000 + GetParam() * 23003;
    auto outcome = runWorkload(spec);
    EXPECT_TRUE(outcome.verified)
        << "crash@" << *spec.crashAt << ": "
        << outcome.verifyMessage;
}

INSTANTIATE_TEST_SUITE_P(Points, CrashSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

// --------- property: log-size sweep keeps hazards at zero -------

class LogSizeSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LogSizeSweep, DerivedFwbPeriodPreventsHazards)
{
    RunSpec spec = propSpec("sps", PersistMode::Fwb, 3);
    spec.params.txPerThread = 1500;
    spec.sys.persist.logBytes = GetParam() * 1024;
    spec.sys.map.logSize = spec.sys.persist.logBytes;
    auto outcome = runWorkload(spec);
    EXPECT_TRUE(outcome.verified) << outcome.verifyMessage;
    EXPECT_EQ(outcome.stats.overwriteHazards, 0u);
    EXPECT_GT(outcome.stats.logWraps + 1, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LogSizeSweep,
                         ::testing::Values(16u, 32u, 64u, 128u,
                                           512u));

// --------- property: torn drains never corrupt recovery ---------

class TornDrainSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TornDrainSweep, CrashInsideRecordDrainIsSafe)
{
    // crashJournal enables the per-slot split drain (payload before
    // header), so crash points can land between the two device
    // writes of a record. Recovery must treat such slots as torn.
    RunSpec spec = propSpec("echo", PersistMode::Fwb, 7);
    spec.params.txPerThread = 1000;
    spec.sys.persist.crashJournal = true;
    spec.crashAt = 15000 + GetParam() * 9973;
    auto outcome = runWorkload(spec);
    EXPECT_TRUE(outcome.verified)
        << "crash@" << *spec.crashAt << ": "
        << outcome.verifyMessage;
}

INSTANTIATE_TEST_SUITE_P(Points, TornDrainSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

// --------- property: recovery idempotence on live systems -------

TEST(RecoveryIdempotence, DoubleRecoveryIsStable)
{
    RunSpec spec = propSpec("vacation", PersistMode::Fwb, 9);
    spec.params.txPerThread = 800;
    spec.sys.persist.crashJournal = true;
    spec.crashAt = 60000;
    // First recovery happens inside runWorkload; do it by hand here
    // to run it twice.
    spec.verifyAtEnd = false;
    auto outcome = runWorkload(spec);
    ASSERT_TRUE(outcome.crashed);
    // runWorkload already recovered its own snapshot; replicate:
    // recover a fresh snapshot twice and compare heap contents.
    RunSpec spec2 = spec;
    auto o2 = runWorkload(spec2);
    EXPECT_EQ(outcome.recovery.committedTxns,
              o2.recovery.committedTxns);
    EXPECT_EQ(outcome.recovery.undoApplied, o2.recovery.undoApplied);
}
