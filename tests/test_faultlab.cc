/**
 * @file
 * Tests for faultlab: log record format v2 (CRC + version), the
 * deterministic NVRAM media-fault injector, snapshot-image faulting,
 * the salvaging recovery scanner (quarantine soundness, salvage
 * idempotence), transaction abort with in-log undo rollback, and the
 * log-full policies (stall, abort-retry).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/system.hh"
#include "crashlab/faultlab.hh"
#include "mem/backing_store.hh"
#include "mem/fault_model.hh"
#include "mem/mem_device.hh"
#include "persist/log_record.hh"
#include "persist/log_region.hh"
#include "persist/recovery.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::persist;

namespace
{

void
flipBit(std::uint8_t img[LogRecord::kSlotBytes], unsigned bit)
{
    img[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

/** In-image log writer used to fabricate damaged crash states. */
class ImageLog
{
  public:
    ImageLog(mem::BackingStore &image, const AddressMap &map)
        : image(image), map(map)
    {
        slots = (map.logSize - LogRegion::kHeaderBytes) /
                LogRecord::kSlotBytes;
        std::uint64_t magic = LogRegion::kMagic;
        image.write(map.logBase(), 8, &magic);
        image.write(map.logBase() + 8, 8, &slots);
    }

    /** Append, returning the slot's NVRAM address. */
    Addr
    append(const LogRecord &rec)
    {
        std::uint8_t img[LogRecord::kSlotBytes];
        rec.serialize(img, (pass & 1) != 0);
        Addr a = slotAddr(tail);
        image.write(a, sizeof(img), img);
        tail = (tail + 1) % slots;
        if (tail == 0)
            ++pass;
        return a;
    }

    Addr
    slotAddr(std::uint64_t slot) const
    {
        return map.logBase() + LogRegion::kHeaderBytes +
               slot * LogRecord::kSlotBytes;
    }

    std::uint64_t slots = 0;

  private:
    mem::BackingStore &image;
    AddressMap map;
    std::uint64_t tail = 0;
    std::uint64_t pass = 1;
};

struct Fixture
{
    AddressMap map;
    mem::BackingStore image;
    ImageLog log;

    Fixture()
        : map(makeMap()), image(map.nvramBase, 1 << 22),
          log(image, map)
    {
    }

    static AddressMap
    makeMap()
    {
        AddressMap m;
        m.nvramSize = 1 << 22;
        m.logSize = 4096;
        return m;
    }

    Addr data(std::uint64_t i) const { return map.heapBase() + i * 8; }
};

} // namespace

// ------------------------- record format v2 ----------------------

TEST(LogRecordV2, PayloadBytesUnchangedFromV1)
{
    // The CRC and version live in formerly-slack header bytes, so
    // the NVRAM write traffic per record is identical to v1 (this
    // pins the Fig 9 / Table I cost model).
    EXPECT_EQ(LogRecord::commit(0, 1).payloadBytes(), 16u);
    EXPECT_EQ(LogRecord::update(0, 1, 64, 8, 5, std::nullopt)
                  .payloadBytes(),
              24u);
    EXPECT_EQ(LogRecord::update(0, 1, 64, 8, std::nullopt, 5)
                  .payloadBytes(),
              24u);
    EXPECT_EQ(LogRecord::update(0, 1, 64, 8, 5, 6).payloadBytes(),
              32u);
}

TEST(LogRecordV2, ClassifySeparatesEmptyTornValid)
{
    std::uint8_t img[LogRecord::kSlotBytes] = {};
    EXPECT_EQ(classifySlot(img).cls, SlotClass::Empty);

    img[20] = 0xab; // payload bytes landed, header did not
    EXPECT_EQ(classifySlot(img).cls, SlotClass::Torn);

    LogRecord::update(2, 7, 0x1000, 8, 3, 4).serialize(img, true);
    SlotInfo info = classifySlot(img);
    EXPECT_EQ(info.cls, SlotClass::Valid);
    EXPECT_TRUE(info.torn);
    EXPECT_EQ(info.rec.tx, 7);
    EXPECT_EQ(info.rec.undo, 3u);
    EXPECT_EQ(info.rec.redo, 4u);
}

TEST(LogRecordV2, CommitRecordCarriesUpdateCount)
{
    std::uint8_t img[LogRecord::kSlotBytes];
    LogRecord::commit(1, 42, 17).serialize(img, false);
    SlotInfo info = classifySlot(img);
    ASSERT_EQ(info.cls, SlotClass::Valid);
    EXPECT_TRUE(info.rec.isCommit);
    EXPECT_EQ(info.rec.nUpdates, 17u);
}

TEST(LogRecordV2, CrcDetectsAllSingleBitPayloadFlips)
{
    std::uint8_t ref[LogRecord::kSlotBytes];
    LogRecord rec = LogRecord::update(3, 0xbeef, 0x123456789abcULL, 8,
                                      111, 222);
    rec.serialize(ref, true);
    unsigned payloadBits = rec.payloadBytes() * 8;
    for (unsigned bit = 0; bit < payloadBits; ++bit) {
        std::uint8_t img[LogRecord::kSlotBytes];
        std::memcpy(img, ref, sizeof(img));
        flipBit(img, bit);
        EXPECT_NE(classifySlot(img).cls, SlotClass::Valid)
            << "undetected flip of payload bit " << bit;
    }
}

TEST(LogRecordV2, CrcDetectsAllDoubleBitPayloadFlips)
{
    // The CRC32 has Hamming distance 4 at 256 bits, so every 2-bit
    // error within the covered payload must be caught. Exhaustive
    // over all pairs of a full 32-byte record: 256*255/2 checks.
    std::uint8_t ref[LogRecord::kSlotBytes];
    LogRecord rec = LogRecord::update(1, 77, 0x2000, 8, 10, 20);
    rec.serialize(ref, false);
    unsigned payloadBits = rec.payloadBytes() * 8;
    ASSERT_EQ(payloadBits, 256u);
    for (unsigned b1 = 0; b1 < payloadBits; ++b1) {
        for (unsigned b2 = b1 + 1; b2 < payloadBits; ++b2) {
            std::uint8_t img[LogRecord::kSlotBytes];
            std::memcpy(img, ref, sizeof(img));
            flipBit(img, b1);
            flipBit(img, b2);
            ASSERT_NE(classifySlot(img).cls, SlotClass::Valid)
                << "undetected flips of bits " << b1 << "," << b2;
        }
    }
}

TEST(LogRecordV2, SlackBitFlipsLeaveRecordIntact)
{
    // Bytes past payloadBytes() are never written to NVRAM; a flip
    // landing there must not change what the record means.
    std::uint8_t ref[LogRecord::kSlotBytes];
    LogRecord rec = LogRecord::commit(0, 9, 3); // 16 B payload
    rec.serialize(ref, false);
    for (unsigned bit = rec.payloadBytes() * 8;
         bit < LogRecord::kSlotBytes * 8; ++bit) {
        std::uint8_t img[LogRecord::kSlotBytes];
        std::memcpy(img, ref, sizeof(img));
        flipBit(img, bit);
        SlotInfo info = classifySlot(img);
        ASSERT_EQ(info.cls, SlotClass::Valid);
        EXPECT_TRUE(info.rec.isCommit);
        EXPECT_EQ(info.rec.tx, 9);
        EXPECT_EQ(info.rec.nUpdates, 3u);
    }
}

namespace
{

// A coroutine proper (not a capturing coroutine lambda): @p base is
// copied into the coroutine frame, so it stays valid across
// suspensions after the spawning scope's temporaries are gone.
sim::Co<void>
flipWorkerBody(Thread &t, Addr base)
{
    Addr mine = base + t.id() * 128;
    for (int i = 0; i < 6; ++i) {
        co_await t.txBegin();
        co_await t.store64(mine + 8 * (i % 4), i + 1);
        co_await t.txCommit();
    }
}

} // namespace

// Satellite property: across ALL nine persistence modes, run a real
// workload, drain everything to NVRAM, and then try every single-bit
// flip (and a deterministic sample of double-bit flips) on every
// valid slot of the drained log window. Each flip must either be
// detected (the slot no longer classifies Valid) or land in slack
// bytes the record never wrote (content unchanged).
TEST(LogRecordV2, EveryFlipInDrainedWindowDetectedAcrossModes)
{
    for (PersistMode mode : kAllModes) {
        SystemConfig cfg = SystemConfig::scaled(2);
        System sys(cfg, mode);
        Addr base = sys.heap().alloc(1024, 64);
        for (CoreId c = 0; c < 2; ++c) {
            sys.spawn(c, [base](Thread &t) {
                return flipWorkerBody(t, base);
            });
        }
        Tick end = sys.run();
        sys.flushAll(end);
        const mem::BackingStore &img = sys.mem().nvram().store();

        const AddressMap &map = sys.config().map;
        std::uint64_t slots =
            (map.logSize - LogRegion::kHeaderBytes) /
            LogRecord::kSlotBytes;
        std::uint64_t checked = 0;
        for (std::uint64_t s = 0; s < slots && checked < 24; ++s) {
            Addr addr = map.logBase() + LogRegion::kHeaderBytes +
                        s * LogRecord::kSlotBytes;
            std::uint8_t ref[LogRecord::kSlotBytes];
            img.read(addr, sizeof(ref), ref);
            SlotInfo orig = classifySlot(ref);
            if (orig.cls != SlotClass::Valid)
                continue;
            ++checked;
            unsigned payloadBits = orig.rec.payloadBytes() * 8;
            auto checkFlips = [&](unsigned b1, int b2) {
                std::uint8_t mut[LogRecord::kSlotBytes];
                std::memcpy(mut, ref, sizeof(mut));
                flipBit(mut, b1);
                if (b2 >= 0)
                    flipBit(mut, static_cast<unsigned>(b2));
                bool inPayload = b1 < payloadBits ||
                                 (b2 >= 0 && static_cast<unsigned>(
                                                 b2) < payloadBits);
                SlotInfo info = classifySlot(mut);
                if (inPayload) {
                    ASSERT_NE(info.cls, SlotClass::Valid)
                        << persistModeName(mode) << " slot " << s
                        << " bits " << b1 << "," << b2;
                } else {
                    // Slack-only damage: content must be unchanged.
                    ASSERT_EQ(info.cls, SlotClass::Valid);
                    EXPECT_EQ(info.rec.tx, orig.rec.tx);
                    EXPECT_EQ(info.rec.addr, orig.rec.addr);
                    EXPECT_EQ(info.rec.undo, orig.rec.undo);
                    EXPECT_EQ(info.rec.redo, orig.rec.redo);
                }
            };
            for (unsigned bit = 0; bit < LogRecord::kSlotBytes * 8;
                 ++bit)
                checkFlips(bit, -1);
            // Deterministic double-flip sample: 256 pairs per slot.
            for (unsigned bit = 0; bit < LogRecord::kSlotBytes * 8;
                 ++bit)
                checkFlips(bit,
                           static_cast<int>((bit * 7 + 13) % 256));
        }
        // Every mode that logs at all must have given us slots to
        // check (NonPers legitimately has none).
        if (mode != PersistMode::NonPers) {
            EXPECT_GT(checked, 0u) << persistModeName(mode);
        }
    }
}

// --------------------- live fault injector -----------------------

namespace
{

mem::FaultCounters
applyToLine(const FaultModelConfig &cfg, std::uint8_t *buf,
            const std::uint8_t *oldData, Tick tick)
{
    mem::FaultInjector inj(cfg, 4096);
    return inj.apply(0x1000, 64, buf, oldData, tick);
}

} // namespace

TEST(FaultInjector, DroppedWriteKeepsOldBytes)
{
    FaultModelConfig cfg;
    cfg.seed = 5;
    cfg.dropWriteProb = 1.0;
    std::uint8_t buf[64], old[64];
    std::memset(buf, 0xaa, sizeof(buf));
    std::memset(old, 0x55, sizeof(old));
    auto c = applyToLine(cfg, buf, old, 100);
    EXPECT_EQ(c.droppedWrites, 1u);
    EXPECT_EQ(std::memcmp(buf, old, sizeof(buf)), 0);
}

TEST(FaultInjector, TornLineKeepsTailOldBytes)
{
    FaultModelConfig cfg;
    cfg.seed = 5;
    cfg.tornLineProb = 1.0;
    std::uint8_t buf[64], old[64];
    std::memset(buf, 0xaa, sizeof(buf));
    std::memset(old, 0x55, sizeof(old));
    auto c = applyToLine(cfg, buf, old, 100);
    EXPECT_EQ(c.tornLines, 1u);
    for (unsigned i = 0; i < mem::FaultInjector::kTornBytes; ++i)
        EXPECT_EQ(buf[i], 0xaa) << i;
    for (unsigned i = mem::FaultInjector::kTornBytes; i < 64; ++i)
        EXPECT_EQ(buf[i], 0x55) << i;
}

TEST(FaultInjector, BitFlipFlipsExactlyOneBit)
{
    FaultModelConfig cfg;
    cfg.seed = 9;
    cfg.bitFlipProb = 1.0;
    std::uint8_t buf[64], old[64];
    std::memset(buf, 0, sizeof(buf));
    std::memset(old, 0, sizeof(old));
    auto c = applyToLine(cfg, buf, old, 7);
    EXPECT_EQ(c.bitFlips, 1u);
    unsigned set = 0;
    for (unsigned i = 0; i < 64; ++i)
        set += __builtin_popcount(buf[i]);
    EXPECT_EQ(set, 1u);
}

TEST(FaultInjector, DamageIsDeterministicPerSeed)
{
    FaultModelConfig cfg;
    cfg.seed = 42;
    cfg.bitFlipProb = 1.0;
    std::uint8_t a[64], b[64], old[64];
    std::memset(a, 0, sizeof(a));
    std::memset(b, 0, sizeof(b));
    std::memset(old, 0, sizeof(old));
    applyToLine(cfg, a, old, 300);
    applyToLine(cfg, b, old, 300);
    EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0);

    // A different tick (or seed) picks a different bit eventually.
    bool differs = false;
    for (Tick t = 301; t < 320 && !differs; ++t) {
        std::memset(b, 0, sizeof(b));
        applyToLine(cfg, b, old, t);
        differs = std::memcmp(a, b, sizeof(a)) != 0;
    }
    EXPECT_TRUE(differs);
}

TEST(FaultInjector, StuckRowIsTickIndependent)
{
    FaultModelConfig cfg;
    cfg.seed = 3;
    cfg.stuckRowProb = 1.0;
    mem::FaultInjector inj(cfg, 4096);
    EXPECT_TRUE(inj.rowIsStuck(7));
    EXPECT_EQ(inj.stuckValue(7), inj.stuckValue(7));
    EXPECT_EQ(inj.stuckWordOffset(7), inj.stuckWordOffset(7));
    EXPECT_LT(inj.stuckWordOffset(7), 4096u);
    EXPECT_EQ(inj.stuckWordOffset(7) % 8, 0u);
}

TEST(FaultInjector, LiveRunFaultCountIsDeterministic)
{
    auto run = [](std::uint64_t seed) {
        workloads::RunSpec spec;
        spec.workload = "sps";
        spec.mode = PersistMode::Fwb;
        spec.params.threads = 2;
        spec.params.txPerThread = 150;
        spec.sys = SystemConfig::scaled(2);
        spec.sys.nvram.faults = FaultModelConfig::heavy(seed);
        return workloads::runWorkload(spec);
    };
    auto a = run(3);
    auto b = run(3);
    EXPECT_GT(a.stats.faultsInjected, 0u);
    EXPECT_EQ(a.stats.faultsInjected, b.stats.faultsInjected);
    EXPECT_EQ(a.verified, b.verified);
}

TEST(FaultInjector, LogRegionFaultParityAcrossBackends)
{
    // Fault parity is enforced by construction since reorderlab:
    // MemDevice asserts that every timed write landing in the durable
    // log region arrives on the serialized priority channel with a
    // log/metadata origin — the single path the injector instruments
    // — so neither backend *can* grow a log write path that bypasses
    // fault injection. This test drives both backends through
    // log-region-scoped faults (tripping that assert on any escape
    // path) and checks the structural evidence: the injector must
    // have examined log-region bytes, and faults must land, under
    // BOTH backends.
    auto run = [](PersistMode mode) {
        workloads::RunSpec spec;
        spec.workload = "sps";
        spec.mode = mode;
        spec.params.threads = 2;
        spec.params.txPerThread = 200;
        spec.sys = SystemConfig::scaled(2);
        FaultModelConfig faults;
        faults.seed = 11;
        faults.bitFlipProb = 5e-3;
        faults.regionBase = spec.sys.map.logBase();
        faults.regionSize = spec.sys.map.logSize;
        spec.sys.nvram.faults = faults;
        return workloads::runWorkload(spec);
    };
    auto hw = run(PersistMode::Fwb);
    auto sw = run(PersistMode::UndoClwb);
    // Structural: every log write passed through the injector's
    // scope, so both backends show examined bytes — deterministic
    // evidence that does not depend on fault-probability luck.
    EXPECT_GT(hw.stats.faultExaminedBytes, 0u)
        << "hardware log writes bypass the fault injector";
    EXPECT_GT(sw.stats.faultExaminedBytes, 0u)
        << "software log writes bypass the fault injector";
    // And at this rate faults do land under both.
    EXPECT_GT(hw.stats.faultsInjected, 0u);
    EXPECT_GT(sw.stats.faultsInjected, 0u);
}

// --------------------- image faulting (sweep) --------------------

TEST(ImageFaults, OnlyValidSlotsDamagedAndPlanIsExact)
{
    Fixture f;
    f.log.append(LogRecord::update(0, 10, f.data(0), 8, 1, 2));
    f.log.append(LogRecord::commit(0, 10, 1));
    f.log.append(LogRecord::update(0, 11, f.data(1), 8, 3, 4));

    crashlab::ImageFaultConfig cfg;
    cfg.seed = 1;
    cfg.dropSlotProb = 1.0;
    auto plan = crashlab::applyImageFaults(f.image, f.map, cfg, 500);
    EXPECT_EQ(plan.slotsFaulted, 3u);
    EXPECT_EQ(plan.droppedSlots, 3u);
    ASSERT_EQ(plan.damagedTxIds.size(), 2u);
    EXPECT_TRUE(plan.damaged(10));
    EXPECT_TRUE(plan.damaged(11));
    EXPECT_FALSE(plan.damaged(12));

    // Dropped slots read back as never-written.
    std::uint8_t img[LogRecord::kSlotBytes];
    f.image.read(f.log.slotAddr(0), sizeof(img), img);
    EXPECT_EQ(classifySlot(img).cls, SlotClass::Empty);
}

TEST(ImageFaults, DeterministicPerSeedAndTick)
{
    auto damage = [](std::uint64_t seed, Tick tick) {
        Fixture f;
        for (int i = 0; i < 40; ++i) {
            f.log.append(LogRecord::update(
                0, static_cast<std::uint16_t>(i), f.data(i), 8, i,
                i + 1));
        }
        crashlab::ImageFaultConfig cfg;
        cfg.seed = seed;
        cfg.bitFlipProb = 0.3;
        auto plan = crashlab::applyImageFaults(f.image, f.map, cfg,
                                               tick);
        return plan.damagedTxIds;
    };
    EXPECT_EQ(damage(7, 100), damage(7, 100));
    EXPECT_NE(damage(7, 100), damage(8, 100));
}

// --------------------- salvaging recovery ------------------------

TEST(Salvage, QuarantinesOnlyDamagedCommittedTxn)
{
    Fixture f;
    f.image.write64(f.data(0), 1);
    f.image.write64(f.data(1), 1);
    f.image.write64(f.data(2), 1);
    // tx 10: two updates + commit; one update will be destroyed.
    Addr victim = f.log.append(
        LogRecord::update(0, 10, f.data(0), 8, 1, 50));
    f.log.append(LogRecord::update(0, 10, f.data(1), 8, 1, 60));
    f.log.append(LogRecord::commit(0, 10, 2));
    // tx 11: undamaged.
    f.log.append(LogRecord::update(0, 11, f.data(2), 8, 1, 70));
    f.log.append(LogRecord::commit(0, 11, 1));

    std::uint8_t zero[LogRecord::kSlotBytes] = {};
    f.image.write(victim, sizeof(zero), zero);

    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.committedTxns, 2u);
    EXPECT_EQ(report.salvagedTxns, 1u);
    EXPECT_EQ(report.quarantinedTxns, 1u);
    ASSERT_EQ(report.quarantinedTxIds.size(), 1u);
    EXPECT_EQ(report.quarantinedTxIds[0], 10);
    // The quarantined txn is left untouched — neither of its redo
    // values may be replayed (zero false replays).
    EXPECT_EQ(f.image.read64(f.data(0)), 1u);
    EXPECT_EQ(f.image.read64(f.data(1)), 1u);
    // The undamaged txn replays normally.
    EXPECT_EQ(f.image.read64(f.data(2)), 70u);
}

TEST(Salvage, CrcDamageCountedAndLocated)
{
    Fixture f;
    f.image.write64(f.data(0), 1);
    Addr victim = f.log.append(
        LogRecord::update(0, 20, f.data(0), 8, 1, 90));
    f.log.append(LogRecord::commit(0, 20, 1));

    std::uint8_t img[LogRecord::kSlotBytes];
    f.image.read(victim, sizeof(img), img);
    flipBit(img, 70); // payload bit: CRC must catch it
    f.image.write(victim, sizeof(img), img);

    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.crcFailSlots, 1u);
    EXPECT_EQ(report.firstBadSlotAddr, victim);
    EXPECT_EQ(report.quarantinedTxns, 1u);
    EXPECT_EQ(f.image.read64(f.data(0)), 1u);
}

TEST(Salvage, IdempotentUnderDamage)
{
    // Invariant I8: running the (non-truncating) salvage twice over
    // a damaged image agrees byte for byte with running it once.
    Fixture f;
    f.image.write64(f.data(0), 1);
    f.image.write64(f.data(1), 1);
    Addr victim = f.log.append(
        LogRecord::update(0, 30, f.data(0), 8, 1, 11));
    f.log.append(LogRecord::commit(0, 30, 1));
    f.log.append(LogRecord::update(0, 31, f.data(1), 8, 1, 22));
    f.log.append(LogRecord::commit(0, 31, 1));
    std::uint8_t img[LogRecord::kSlotBytes];
    f.image.read(victim, sizeof(img), img);
    flipBit(img, 90);
    f.image.write(victim, sizeof(img), img);

    RecoveryOptions noTrunc;
    noTrunc.truncateLog = false;
    mem::BackingStore once = f.image;
    Recovery::run(once, f.map, noTrunc);
    mem::BackingStore twice = once;
    Recovery::run(twice, f.map, noTrunc);
    EXPECT_EQ(once.firstDifference(twice, f.map.nvramBase,
                                   f.map.nvramSize),
              std::nullopt);
}

TEST(Salvage, IgnoreCrcFaultInjectionReplaysGarbage)
{
    // The --inject-ignore-crc self-test bug: trusting a damaged slot
    // replays a corrupted redo value the CRC would have stopped.
    Fixture f;
    f.image.write64(f.data(0), 1);
    Addr victim = f.log.append(
        LogRecord::update(0, 40, f.data(0), 8, 1, 0x100));
    f.log.append(LogRecord::commit(0, 40, 1));
    std::uint8_t img[LogRecord::kSlotBytes];
    f.image.read(victim, sizeof(img), img);
    flipBit(img, 26 * 8); // corrupt a redo-value byte
    f.image.write(victim, sizeof(img), img);

    mem::BackingStore checked = f.image;
    auto good = Recovery::run(checked, f.map);
    EXPECT_EQ(good.quarantinedTxns, 1u);
    EXPECT_EQ(checked.read64(f.data(0)), 1u);

    RecoveryOptions unchecked;
    unchecked.faultIgnoreCrc = true;
    auto bad = Recovery::run(f.image, f.map, unchecked);
    EXPECT_EQ(bad.quarantinedTxns, 0u);
    EXPECT_NE(f.image.read64(f.data(0)), 1u); // garbage replayed
}

namespace
{

sim::Co<void>
counterWorkerBody(Thread &t, Addr base, int iters)
{
    Addr mine = base + t.id() * 64;
    for (int i = 0; i < iters; ++i) {
        co_await t.txBegin();
        co_await t.store64(mine, i + 1);
        co_await t.txCommit();
    }
}

} // namespace

TEST(Salvage, FaultedCheckerPassesOnHonestRecovery)
{
    // End-to-end: a real crash snapshot, deterministic image damage,
    // and the faulted invariant set must hold for the real recovery.
    SystemConfig cfg = SystemConfig::scaled(2);
    cfg.persist.crashJournal = true;
    System sys(cfg, PersistMode::Fwb);
    Addr base = sys.heap().alloc(512, 64);
    for (CoreId c = 0; c < 2; ++c) {
        sys.spawn(c, [base](Thread &t) {
            return counterWorkerBody(t, base, 20);
        });
    }
    Tick end = sys.run();

    crashlab::ImageFaultConfig faults;
    faults.seed = 11;
    faults.bitFlipProb = 0.05;
    faults.dropSlotProb = 0.02;

    crashlab::CrashFacts facts;
    facts.tick = end;
    facts.threads = 2;
    facts.txBegun = 40;
    facts.txCommitted = 40;
    facts.mode = PersistMode::Fwb;

    mem::BackingStore image = sys.crashSnapshot(end);
    persist::RecoveryReport rep;
    crashlab::ImageFaultPlan plan;
    auto violations = crashlab::checkFaultedCrashPoint(
        image, sys.config().map, faults, facts, RecoveryOptions{},
        &rep, &plan);
    for (const auto &v : violations)
        ADD_FAILURE() << v.invariant << ": " << v.detail;
    EXPECT_GT(plan.slotsFaulted, 0u);
    // Quarantine can only hit transactions the plan damaged (a
    // damaged txn may instead surface as uncommitted, so <=).
    EXPECT_LE(rep.quarantinedTxns, plan.damagedTxIds.size());
}

// -------------------------- tx_abort -----------------------------

namespace
{

sim::Co<void>
abortingThread(Thread &t, Addr addr, bool *abortedFlag)
{
    co_await t.txBegin();
    co_await t.store64(addr, 100);
    co_await t.txCommit();

    co_await t.txBegin();
    co_await t.store64(addr, 200);
    co_await t.txAbort();
    if (abortedFlag)
        *abortedFlag = t.lastTxAborted();
}

} // namespace

TEST(TxAbort, RollsBackStoresInUndoModes)
{
    for (PersistMode mode :
         {PersistMode::UndoClwb, PersistMode::HwUlog,
          PersistMode::Hwl, PersistMode::Fwb}) {
        SystemConfig cfg = SystemConfig::scaled(1);
        cfg.persist.crashJournal = true;
        System sys(cfg, mode);
        Addr addr = sys.heap().alloc(64, 64);
        bool aborted = false;
        sys.spawn(0, [&](Thread &t) {
            return abortingThread(t, addr, &aborted);
        });
        Tick end = sys.run();
        EXPECT_TRUE(aborted) << persistModeName(mode);
        EXPECT_EQ(sys.txns().aborted.value(), 1u);
        EXPECT_EQ(sys.txns().committed.value(), 1u);

        // Live memory sees the rollback...
        sys.flushAll(end);
        EXPECT_EQ(sys.mem().nvram().store().read64(addr), 100u)
            << persistModeName(mode);

        // ...and so does recovery from a crash right after the
        // abort (the compensating stores are themselves logged).
        // Only the failure-atomic modes promise that much; hw-ulog
        // alone lacks the redo/force needed to finish a commit.
        if (crashlab::guaranteesFailureAtomicity(mode)) {
            mem::BackingStore image = sys.crashSnapshot(end);
            persist::Recovery::run(image, sys.config().map);
            EXPECT_EQ(image.read64(addr), 100u)
                << persistModeName(mode);
        }
    }
}

TEST(TxAbortDeathTest, RedoOnlyModeFailsLoudly)
{
    // Redo-only logging cannot roll back in place (the motivation
    // for undo+redo, paper Section II-B). tx_abort used to quietly
    // leave the generation uncommitted, but steal means the aborted
    // stores may already sit in NVRAM — silently "dropping" the
    // transaction corrupts. The abort path now refuses outright.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            SystemConfig cfg = SystemConfig::scaled(1);
            cfg.persist.crashJournal = true;
            System sys(cfg, PersistMode::RedoClwb);
            Addr addr = sys.heap().alloc(64, 64);
            sys.spawn(0, [&](Thread &t) {
                return abortingThread(t, addr, nullptr);
            });
            sys.run();
        },
        "no undo values to roll back with");
}

namespace
{

sim::Co<void>
abortThenCommitBody(Thread &t, Addr addr)
{
    co_await t.txBegin();
    co_await t.store64(addr, 7);
    co_await t.txAbort();
    co_await t.txBegin();
    co_await t.store64(addr, 9);
    co_await t.txCommit();
    EXPECT_FALSE(t.lastTxAborted());
}

} // namespace

TEST(TxAbort, ThreadContinuesAfterAbort)
{
    SystemConfig cfg = SystemConfig::scaled(1);
    System sys(cfg, PersistMode::Fwb);
    Addr addr = sys.heap().alloc(64, 64);
    sys.spawn(0, [addr](Thread &t) {
        return abortThenCommitBody(t, addr);
    });
    Tick end = sys.run();
    sys.flushAll(end);
    EXPECT_EQ(sys.mem().nvram().store().read64(addr), 9u);
    EXPECT_EQ(sys.txns().aborted.value(), 1u);
    EXPECT_EQ(sys.txns().committed.value(), 1u);
}

// ------------------------ log-full policies ----------------------

namespace
{

struct RegionFixture
{
    AddressMap map;
    mem::MemDevice nv;
    LogRegion lr;

    RegionFixture()
        : map(makeMap()), nv("nv", nvCfg(), map.nvramBase),
          lr(map, nv)
    {
        lr.create();
    }

    static AddressMap
    makeMap()
    {
        AddressMap m;
        m.logSize = 4096; // 126 slots
        return m;
    }

    static MemDeviceConfig
    nvCfg()
    {
        MemDeviceConfig cfg;
        cfg.sizeBytes = 1 << 24;
        return cfg;
    }

    /** Fill every slot with live update records bound to @p txSeq. */
    void
    fill(std::uint64_t txSeq)
    {
        for (std::uint64_t i = 0; i < lr.slotCount(); ++i) {
            auto r = lr.reserve(
                LogRecord::update(0, 1, map.heapBase() + i * 8, 8, 0,
                                  i),
                100);
            lr.bindSlotTx(r.slot, txSeq);
        }
    }
};

} // namespace

TEST(LogFullPolicy, StallForcesWritebackThenProceeds)
{
    RegionFixture f;
    bool persisted = false;
    int writebacks = 0;
    f.lr.setPersistedSince(
        [&](Addr, Tick, Tick) { return persisted; });
    f.lr.setForceWriteback([&](Addr, Tick now) {
        persisted = true;
        ++writebacks;
        return now + 10;
    });
    f.lr.setLogFullPolicy(LogFullPolicy::Stall, 8, 64);
    f.fill(0); // txSeq 0: not active, but data not persisted

    auto r = f.lr.reserve(LogRecord::commit(0, 2), 200);
    EXPECT_EQ(writebacks, 1);
    EXPECT_EQ(r.readyAt, 210u); // waited for the forced write-back
    EXPECT_EQ(f.lr.forcedWritebacks.value(), 1u);
    EXPECT_EQ(f.lr.hazards.value(), 0u); // made safe, not hazardous
}

TEST(LogFullPolicy, StallBacksOffThenGivesUp)
{
    RegionFixture f;
    f.lr.setPersistedSince(
        [](Addr, Tick, Tick) { return false; });
    f.lr.setLogFullPolicy(LogFullPolicy::Stall, 3, 64);
    f.fill(0);

    auto r = f.lr.reserve(LogRecord::commit(0, 2), 1000);
    // 3 backoffs (64, 128, 256) before the retries are exhausted
    // and the append falls back to a counted hazardous reclaim.
    EXPECT_EQ(f.lr.logFullStalls.value(), 3u);
    EXPECT_EQ(r.readyAt, 1000u + 64 + 128 + 256);
    EXPECT_EQ(f.lr.hazards.value(), 1u);
}

TEST(LogFullPolicy, AbortRetryRequestsVictimAbort)
{
    RegionFixture f;
    std::vector<std::uint64_t> requested;
    bool active = true;
    f.lr.setTxActive([&](std::uint64_t) { return active; });
    f.lr.setAbortRequestSink([&](std::uint64_t seq) {
        requested.push_back(seq);
        return true; // granted, but the victim never lets go
    });
    f.lr.setLogFullPolicy(LogFullPolicy::AbortRetry, 4, 16);
    f.fill(77);

    auto r = f.lr.reserve(LogRecord::commit(0, 2), 500);
    ASSERT_FALSE(requested.empty());
    EXPECT_EQ(requested.front(), 77u); // the blocking transaction
    EXPECT_GT(f.lr.logFullStalls.value(), 0u);
    EXPECT_GT(r.readyAt, 500u);
    EXPECT_EQ(f.lr.hazards.value(), 1u); // victim never let go

    // Once the victim aborts, the next blocked append goes through
    // after a single request with no hazard.
    std::uint64_t hazardsBefore = f.lr.hazards.value();
    requested.clear();
    f.lr.setAbortRequestSink([&](std::uint64_t seq) {
        requested.push_back(seq);
        active = false; // victim rolls back
        return true;
    });
    f.lr.reserve(LogRecord::commit(0, 3), 600);
    EXPECT_EQ(requested.size(), 1u);
    EXPECT_EQ(f.lr.hazards.value(), hazardsBefore);
}

namespace
{

sim::Co<void>
divertedCommitBody(Thread &t, System &sys, Addr addr)
{
    co_await t.txBegin();
    co_await t.store64(addr, 1);
    co_await t.txCommit();

    co_await t.txBegin();
    co_await t.store64(addr, 2);
    sys.txns().requestAbort(t.currentTxSeq());
    co_await t.txCommit(); // diverted into an abort
    EXPECT_TRUE(t.lastTxAborted());
}

} // namespace

TEST(LogFullPolicy, AbortRequestDivertsNextCommit)
{
    // System-level: a requested abort is honored at the victim's
    // next commit, which rolls back instead of committing.
    SystemConfig cfg = SystemConfig::scaled(1);
    System sys(cfg, PersistMode::Fwb);
    Addr addr = sys.heap().alloc(64, 64);
    sys.spawn(0, [&sys, addr](Thread &t) {
        return divertedCommitBody(t, sys, addr);
    });
    Tick end = sys.run();
    sys.flushAll(end);
    EXPECT_EQ(sys.mem().nvram().store().read64(addr), 1u);
    EXPECT_EQ(sys.txns().aborted.value(), 1u);
    EXPECT_EQ(sys.txns().committed.value(), 1u);
}
