/**
 * @file
 * OLTP engine tests (DESIGN §8, ctest label `oltp`): the TPC-C
 * consistency oracle after clean runs AND after crash-point recovery
 * under every guaranteed mode × CC scheme, the oracle's own teeth (a
 * corrupted image must be rejected), YCSB torn-update detection at a
 * large Zipf-skewed keyspace, counter determinism across repeats and
 * across host --jobs, the no-steal empty-write-set abort being legal
 * under redo-only logging, the contended multi-shard crash sweep
 * (I1–I8), and the latency histogram's quantile contract.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "crashlab/sweep.hh"
#include "oltp/bench.hh"
#include "oltp/latency.hh"
#include "oltp/tpcc.hh"
#include "oltp/ycsb.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::oltp;
using namespace snf::workloads;

namespace
{

/** A contended OLTP cell: more threads than warehouses. */
RunSpec
oltpSpec(const std::string &wl, PersistMode mode, CcMode cc)
{
    RunSpec spec;
    spec.workload = wl;
    spec.mode = mode;
    spec.params.threads = 4;
    spec.params.txPerThread = 120;
    spec.params.footprint = 64;
    spec.params.warehouses = 2;
    spec.params.seed = 5;
    spec.sys = SystemConfig::scaled(spec.params.threads);
    spec.sys.persist.ccMode = cc;
    return spec;
}

std::string
oltpCellName(const ::testing::TestParamInfo<
             std::tuple<PersistMode, CcMode>> &info)
{
    std::string n =
        std::string(persistModeName(std::get<0>(info.param))) + "_" +
        ccModeName(std::get<1>(info.param));
    for (auto &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

// ------------------------------------------------------------------
// TPC-C oracle: clean run and crash-point recovery, every guaranteed
// mode × both CC schemes (the ISSUE acceptance matrix).
// ------------------------------------------------------------------

class TpccOracle
    : public ::testing::TestWithParam<std::tuple<PersistMode, CcMode>>
{
};

TEST_P(TpccOracle, CleanRunSatisfiesInvariants)
{
    auto [mode, cc] = GetParam();
    auto outcome = runWorkload(oltpSpec("oltp-tpcc", mode, cc));
    EXPECT_TRUE(outcome.verified) << outcome.verifyMessage;
    EXPECT_GT(outcome.stats.committedTx, 0u);
}

TEST_P(TpccOracle, CrashPointRecoverySatisfiesInvariants)
{
    auto [mode, cc] = GetParam();
    for (Tick at : {Tick(60000), Tick(390000)}) {
        RunSpec spec = oltpSpec("oltp-tpcc", mode, cc);
        spec.params.txPerThread = 200;
        spec.sys.persist.crashJournal = true;
        spec.crashAt = at;
        auto outcome = runWorkload(spec);
        EXPECT_TRUE(outcome.verified)
            << persistModeName(mode) << "/" << ccModeName(cc) << " @"
            << at << ": " << outcome.verifyMessage;
    }
}

TEST_P(TpccOracle, YcsbCleanAndCrashRecovery)
{
    auto [mode, cc] = GetParam();
    RunSpec spec = oltpSpec("oltp-ycsb", mode, cc);
    spec.params.footprint = 4096;
    spec.params.zipfTheta = 0.9;
    auto outcome = runWorkload(spec);
    EXPECT_TRUE(outcome.verified) << outcome.verifyMessage;

    spec.sys.persist.crashJournal = true;
    spec.crashAt = 90000;
    outcome = runWorkload(spec);
    EXPECT_TRUE(outcome.verified)
        << persistModeName(mode) << "/" << ccModeName(cc) << ": "
        << outcome.verifyMessage;
}

INSTANTIATE_TEST_SUITE_P(
    All, TpccOracle,
    ::testing::Combine(::testing::Values(PersistMode::Fwb,
                                         PersistMode::UndoClwb,
                                         PersistMode::RedoClwb),
                       ::testing::Values(CcMode::TwoPhase,
                                         CcMode::Tl2)),
    oltpCellName);

// ------------------------------------------------------------------
// The oracle has teeth: corrupting one word of a verified image must
// produce a failure with a diagnostic.
// ------------------------------------------------------------------

TEST(TpccOracleTeeth, CorruptedImageIsRejected)
{
    WorkloadParams params;
    params.threads = 2;
    params.txPerThread = 60;
    params.footprint = 48;
    params.warehouses = 2;
    params.seed = 9;

    SystemConfig cfg = SystemConfig::scaled(params.threads);
    cfg.persist.ccMode = CcMode::TwoPhase;
    System sys(cfg, PersistMode::Fwb);
    TpccEngine eng;
    eng.setup(sys, params);
    for (CoreId c = 0; c < params.threads; ++c)
        sys.spawn(c, [&](Thread &t) -> sim::Co<void> {
            return eng.thread(sys, t, params);
        });
    Tick end = sys.run(kTickNever);
    sys.flushAll(end);

    std::string why;
    ASSERT_TRUE(eng.verify(sys.mem().nvram().store(), &why)) << why;

    // Book one phantom dollar into warehouse 0: w_ytd no longer
    // equals the sum of its districts' d_ytd.
    const TpccLayout &lay = eng.layout();
    Addr wytd = lay.warehouseAddr(0);
    std::uint64_t v = sys.mem().nvram().store().read64(wytd) + 1;
    sys.mem().nvram().functionalWrite(wytd, 8, &v);

    EXPECT_FALSE(checkTpccConsistency(sys.mem().nvram().store(), lay,
                                      &why));
    EXPECT_NE(why.find("w_ytd"), std::string::npos) << why;
}

// ------------------------------------------------------------------
// No-steal discipline: under redo-only logging a conflict-doomed
// transaction aborts with an empty write-set — tx_abort must be legal
// there (it used to assert), and contended TL2 runs exercise it.
// ------------------------------------------------------------------

TEST(NoSteal, RedoOnlyConflictAbortsAreLegalAndRecoverable)
{
    RunSpec spec = oltpSpec("oltp-tpcc", PersistMode::RedoClwb,
                            CcMode::Tl2);
    spec.params.threads = 4;
    spec.params.warehouses = 1; // every thread on one warehouse
    auto outcome = runWorkload(spec);
    EXPECT_TRUE(outcome.verified) << outcome.verifyMessage;
    // The whole point of the cell: conflicts happened and were
    // resolved by abort-retry without undo values.
    EXPECT_GT(outcome.stats.abortedTx, 0u);
}

// ------------------------------------------------------------------
// Determinism: the deterministic counters block is a pure function of
// the cell spec — identical across repeats and across host --jobs.
// ------------------------------------------------------------------

TEST(OltpBench, CountersIdenticalAcrossRepeatsAndJobs)
{
    OltpMatrixConfig cfg;
    cfg.threads = 2;
    cfg.txPerThread = 30;
    cfg.customers = 32;
    cfg.keys = 2048;
    // Two repeats: runOltpCell itself fatals on counter drift.
    cfg.minRepeats = 2;

    std::vector<OltpCellSpec> cells = {
        {"oltp-tpcc", PersistMode::Fwb, CcMode::TwoPhase},
        {"oltp-ycsb", PersistMode::RedoClwb, CcMode::Tl2},
    };

    cfg.jobs = 1;
    auto serial = runOltpMatrix(cells, cfg);
    cfg.jobs = 4;
    auto parallel = runOltpMatrix(cells, cfg);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(serial[i].countersEqual(parallel[i]))
            << cells[i].engine << " counters depend on --jobs";
    EXPECT_GT(serial[0].committedTx, 0u);
    EXPECT_GT(serial[0].occSamples, 0u);
}

// ------------------------------------------------------------------
// Contended multi-shard crash sweep: every sampled crash point of a
// 4-thread, 2-warehouse TPC-C cell over a 4-sharded log must recover
// and satisfy the invariant checkers I1–I8 plus the TPC-C oracle.
// ------------------------------------------------------------------

TEST(OltpCrashSweep, ContendedShardedTpccSweepPasses)
{
    crashlab::SweepConfig cfg;
    cfg.run = oltpSpec("oltp-tpcc", PersistMode::Fwb, CcMode::TwoPhase);
    cfg.run.params.txPerThread = 60;
    cfg.run.sys.persist.logShards = 4;
    cfg.jobs = 2;
    cfg.maxPoints = 12;
    auto res = crashlab::runCrashSweep(cfg);
    EXPECT_TRUE(res.passed()) << res.minimizedDetail;
    EXPECT_GT(res.pointsTested, 0u);
    EXPECT_TRUE(res.refVerified) << res.refVerifyMessage;
}

// ------------------------------------------------------------------
// Latency histogram: exact below one octave, bounded relative error
// above, quantiles and merge as documented.
// ------------------------------------------------------------------

TEST(LatencyHistogram, EmptyReportsZeros)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0u);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.p999(), 0u);
}

TEST(LatencyHistogram, SmallValuesAreExact)
{
    LatencyHistogram h;
    for (std::uint64_t v : {1, 2, 3})
        h.record(v);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 3u);
    EXPECT_EQ(h.mean(), 2u);
    EXPECT_EQ(h.p50(), 2u);
    EXPECT_EQ(h.quantile(1.0), 3u);
}

TEST(LatencyHistogram, QuantileErrorIsBounded)
{
    // Bucket upper bounds are within 1/8 (kSub) relative error of any
    // member value, and quantiles never exceed the recorded max.
    LatencyHistogram h;
    for (std::uint64_t v = 1000; v < 2000; v += 10)
        h.record(v);
    std::uint64_t p50 = h.p50();
    EXPECT_GE(p50, 1400u);
    EXPECT_LE(p50, 1690u); // 1500 * 1.125, and clamped to max
    EXPECT_LE(h.quantile(1.0), h.max());
    EXPECT_GE(h.quantile(1.0), 1990u);
}

TEST(LatencyHistogram, MergeAccumulates)
{
    LatencyHistogram a, b;
    a.record(5);
    a.record(100);
    b.record(70000);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.min(), 5u);
    EXPECT_EQ(a.max(), 70000u);
    EXPECT_EQ(a.sum(), 70105u);
    EXPECT_EQ(a.quantile(1.0), 70000u);
}

// ------------------------------------------------------------------
// YCSB at a production-scale keyspace: a Zipf-skewed run over 10^6
// keys sets up in O(touched pages) (no prewrites) and verifies (no
// torn updates: every payload word equals the record version).
// ------------------------------------------------------------------

TEST(YcsbScale, MillionKeyZipfRunVerifies)
{
    RunSpec spec = oltpSpec("oltp-ycsb", PersistMode::Fwb,
                            CcMode::Tl2);
    spec.params.footprint = 1000000;
    spec.params.zipfTheta = 0.99;
    spec.params.txPerThread = 150;
    auto outcome = runWorkload(spec);
    EXPECT_TRUE(outcome.verified) << outcome.verifyMessage;
    // YCSB has no user aborts: every transaction eventually commits.
    EXPECT_EQ(outcome.stats.committedTx,
              4u * spec.params.txPerThread);
}
