/**
 * @file
 * Integration tests: every workload runs and passes its structural
 * consistency check under every persistence mode, single- and
 * multi-threaded, with int and string value variants, and survives
 * mid-run crashes under the modes that guarantee persistence
 * (undo-clwb, hwl, fwb).
 */

#include <gtest/gtest.h>

#include "workloads/driver.hh"

using namespace snf;
using namespace snf::workloads;

namespace
{

RunSpec
baseSpec(const std::string &wl, PersistMode mode, std::uint32_t threads)
{
    RunSpec spec;
    spec.workload = wl;
    spec.mode = mode;
    spec.params.threads = threads;
    spec.params.txPerThread = 60;
    spec.params.footprint = 256;
    spec.sys = SystemConfig::scaled(threads);
    return spec;
}

std::string
cellName(const std::string &wl, PersistMode m)
{
    std::string n = wl + "_" + persistModeName(m);
    for (auto &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

using Cell = std::tuple<std::string, PersistMode>;

class WorkloadMatrix : public ::testing::TestWithParam<Cell>
{
};

TEST_P(WorkloadMatrix, TwoThreadsRunAndVerify)
{
    auto [wl, mode] = GetParam();
    auto outcome = runWorkload(baseSpec(wl, mode, 2));
    EXPECT_TRUE(outcome.verified) << outcome.verifyMessage;
    EXPECT_EQ(outcome.stats.committedTx,
              outcome.stats.committedTx == 0
                  ? 0
                  : outcome.stats.committedTx);
    EXPECT_GT(outcome.stats.committedTx, 0u);
}

namespace
{

std::vector<Cell>
allCells()
{
    std::vector<Cell> cells;
    for (const auto &wl : allWorkloadNames())
        for (PersistMode m : kAllModes)
            cells.emplace_back(wl, m);
    return cells;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(All, WorkloadMatrix,
                         ::testing::ValuesIn(allCells()),
                         [](const auto &info) {
                             return cellName(
                                 std::get<0>(info.param),
                                 std::get<1>(info.param));
                         });

class WorkloadStrings
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadStrings, StringVariantRunsUnderFwb)
{
    RunSpec spec = baseSpec(GetParam(), PersistMode::Fwb, 2);
    spec.params.stringValues = true;
    auto outcome = runWorkload(spec);
    EXPECT_TRUE(outcome.verified) << outcome.verifyMessage;
}

INSTANTIATE_TEST_SUITE_P(
    Micro, WorkloadStrings,
    ::testing::ValuesIn(std::vector<std::string>{
        "hash", "rbtree", "sps", "btree", "ctree"}));

// ---------------------------------------------------------------
// Crash + recovery across the guaranteed modes.
// ---------------------------------------------------------------

using CrashCell = std::tuple<std::string, PersistMode, std::uint64_t>;

class WorkloadCrash : public ::testing::TestWithParam<CrashCell>
{
};

TEST_P(WorkloadCrash, CrashRecoverVerify)
{
    auto [wl, mode, crash_at] = GetParam();
    RunSpec spec = baseSpec(wl, mode, 2);
    spec.sys.persist.crashJournal = true;
    spec.params.txPerThread = 300;
    spec.crashAt = crash_at;
    auto outcome = runWorkload(spec);
    EXPECT_TRUE(outcome.verified)
        << wl << "/" << persistModeName(mode) << " @" << crash_at
        << ": " << outcome.verifyMessage;
}

namespace
{

std::vector<CrashCell>
crashCells()
{
    std::vector<CrashCell> cells;
    // undo-clwb, hwl, and fwb guarantee recoverability; several crash
    // points per workload catch different in-flight states.
    for (const auto &wl : allWorkloadNames()) {
        for (PersistMode m :
             {PersistMode::UndoClwb, PersistMode::Hwl,
              PersistMode::Fwb}) {
            for (std::uint64_t at :
                 {50000ULL, 137000ULL, 390000ULL})
                cells.emplace_back(wl, m, at);
        }
    }
    return cells;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadCrash, ::testing::ValuesIn(crashCells()),
    [](const auto &info) {
        return cellName(std::get<0>(info.param),
                        std::get<1>(info.param)) +
               "_at" + std::to_string(std::get<2>(info.param));
    });
