/**
 * @file
 * Unit tests for transaction tracking and post-crash recovery:
 * redo of committed transactions, undo of uncommitted ones, the
 * torn-bit window scan across wraps, torn-record rejection, recovery
 * idempotence (invariant I6), and log truncation.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"
#include "persist/log_record.hh"
#include "persist/log_region.hh"
#include "persist/recovery.hh"
#include "persist/txn_tracker.hh"

using namespace snf;
using namespace snf::persist;

// --------------------------- TxnTracker --------------------------

TEST(TxnTracker, BeginCommitLifecycle)
{
    TxnTracker t;
    std::uint64_t a = t.begin(0);
    std::uint64_t b = t.begin(1);
    EXPECT_NE(a, b);
    EXPECT_TRUE(t.isActive(a));
    t.commit(a);
    EXPECT_FALSE(t.isActive(a));
    EXPECT_TRUE(t.isActive(b));
    EXPECT_EQ(t.begun.value(), 2u);
    EXPECT_EQ(t.committed.value(), 1u);
}

TEST(TxnTracker, WriteSetDeduplicatesLines)
{
    TxnTracker t;
    std::uint64_t seq = t.begin(0);
    t.recordWrite(seq, 0x100);
    t.recordWrite(seq, 0x140);
    t.recordWrite(seq, 0x100);
    EXPECT_EQ(t.writeSet(seq).size(), 2u);
    EXPECT_EQ(t.writeSet(seq)[0], 0x100u);
}

TEST(TxnTracker, TxIdTruncatesSequence)
{
    EXPECT_EQ(TxnTracker::txIdOf(0x12345), 0x2345);
}

TEST(TxnTracker, AbortRemovesTxn)
{
    TxnTracker t;
    std::uint64_t seq = t.begin(2);
    t.abort(seq);
    EXPECT_FALSE(t.isActive(seq));
    EXPECT_EQ(t.committed.value(), 0u);
}

TEST(TxnTracker, AbortRetryCapDeniesRepeatVictim)
{
    // Log-full abort-retry livelock guard: after the cap is hit on
    // one thread's consecutive victimizations, further requests are
    // denied (escalating to the stall path) until it commits.
    TxnTracker t;
    t.setAbortRetryCap(2);
    std::uint64_t s1 = t.begin(3);
    EXPECT_TRUE(t.requestAbort(s1));
    EXPECT_TRUE(t.abortRequested(s1));
    t.abort(s1);
    std::uint64_t s2 = t.begin(3);
    EXPECT_TRUE(t.requestAbort(s2));
    t.abort(s2);
    EXPECT_EQ(t.victimStreak(3), 2u);

    std::uint64_t s3 = t.begin(3);
    EXPECT_FALSE(t.requestAbort(s3)) << "cap must deny the third";
    EXPECT_FALSE(t.abortRequested(s3));
    EXPECT_EQ(t.abortEscalations.value(), 1u);

    // A commit clears the streak and re-arms the guard.
    t.commit(s3);
    EXPECT_EQ(t.victimStreak(3), 0u);
    std::uint64_t s4 = t.begin(3);
    EXPECT_TRUE(t.requestAbort(s4));
}

TEST(TxnTracker, RequestAbortAfterLogFullAbortKeepsStateClean)
{
    // A stale abort request against a victim that already rolled
    // back must not wedge the log-full path: the request trivially
    // succeeds (nothing blocks the caller), no escalation is
    // counted, and the write-set/log-record bookkeeping is released.
    TxnTracker t;
    std::uint64_t seq = t.begin(1);
    t.recordWrite(seq, 0x1000);
    t.noteLogRecord(seq);
    EXPECT_EQ(t.logRecordCount(seq), 1u);
    EXPECT_TRUE(t.requestAbort(seq));
    EXPECT_TRUE(t.requestAbort(seq)) << "duplicate already granted";
    EXPECT_EQ(t.abortRequests.value(), 1u);
    t.abort(seq);
    EXPECT_FALSE(t.isActive(seq));
    EXPECT_TRUE(t.requestAbort(seq)) << "dead seq never blocks";
    EXPECT_FALSE(t.abortRequested(seq));
    EXPECT_EQ(t.abortEscalations.value(), 0u);
    EXPECT_EQ(t.writeSet(seq).size(), 0u);
    EXPECT_EQ(t.logRecordCount(seq), 0u);
}

// ------------------- concurrency control (CC) --------------------

TEST(TxnTrackerCc, TwoPhaseLockConflictWaitsUntilRelease)
{
    TxnTracker t;
    t.setCcMode(CcMode::TwoPhase);
    std::uint64_t a = t.begin(0);
    std::uint64_t b = t.begin(1);
    EXPECT_EQ(t.acquireLine(a, 0x1000, true), CcDecision::Granted);
    EXPECT_EQ(t.lockOwnerOf(0x1000), a);
    // Re-acquiring a held line is free; a 2PL *read* of it conflicts
    // just like a write (exclusive locks only).
    EXPECT_EQ(t.acquireLine(a, 0x1000, true), CcDecision::Granted);
    EXPECT_EQ(t.acquireLine(b, 0x1000, false), CcDecision::Wait);
    EXPECT_EQ(t.acquireLine(b, 0x1000, true), CcDecision::Wait);
    EXPECT_EQ(t.lockWaits.value(), 2u);

    t.commit(a);
    EXPECT_EQ(t.lockOwnerOf(0x1000), 0u);
    EXPECT_EQ(t.acquireLine(b, 0x1000, true), CcDecision::Granted);
}

TEST(TxnTrackerCc, DeadlockCycleAbortsTheRequester)
{
    // a holds L1 and waits for L2; when b (holding L2) asks for L1
    // the waits-for edge would close a cycle, so the *requester* b
    // is told to abort while a keeps running.
    TxnTracker t;
    t.setCcMode(CcMode::TwoPhase);
    std::uint64_t a = t.begin(0);
    std::uint64_t b = t.begin(1);
    EXPECT_EQ(t.acquireLine(a, 0x1000, true), CcDecision::Granted);
    EXPECT_EQ(t.acquireLine(b, 0x2000, true), CcDecision::Granted);
    EXPECT_EQ(t.acquireLine(a, 0x2000, true), CcDecision::Wait);
    EXPECT_EQ(t.acquireLine(b, 0x1000, true), CcDecision::Abort);
    EXPECT_EQ(t.deadlockAborts.value(), 1u);

    // The victim rolls back, releasing its lock; the survivor's
    // retry now succeeds and the victim's retry incarnation can
    // re-arm on fresh lines — abort-retry makes progress.
    t.abort(b);
    EXPECT_EQ(t.lockOwnerOf(0x2000), 0u);
    EXPECT_EQ(t.acquireLine(a, 0x2000, true), CcDecision::Granted);
    std::uint64_t b2 = t.begin(1);
    EXPECT_EQ(t.acquireLine(b2, 0x3000, true), CcDecision::Granted);
    EXPECT_EQ(t.acquireLine(b2, 0x1000, true), CcDecision::Wait);
    t.commit(a);
    EXPECT_EQ(t.acquireLine(b2, 0x1000, true), CcDecision::Granted);
    t.commit(b2);
    EXPECT_EQ(t.deadlockAborts.value(), 1u);
}

TEST(TxnTrackerCc, AbortReleasesEveryHeldLock)
{
    TxnTracker t;
    t.setCcMode(CcMode::TwoPhase);
    std::uint64_t a = t.begin(0);
    EXPECT_EQ(t.acquireLine(a, 0x1000, true), CcDecision::Granted);
    EXPECT_EQ(t.acquireLine(a, 0x2000, false), CcDecision::Granted);
    t.abort(a);
    std::uint64_t b = t.begin(1);
    EXPECT_EQ(t.acquireLine(b, 0x1000, true), CcDecision::Granted);
    EXPECT_EQ(t.acquireLine(b, 0x2000, true), CcDecision::Granted);
}

TEST(TxnTrackerCc, Tl2StaleReadFailsValidation)
{
    // TL2 reads don't lock: they record the line's commit version.
    // A writer committing in between bumps it, so the reader's
    // commit-time validation must fail.
    TxnTracker t;
    t.setCcMode(CcMode::Tl2);
    std::uint64_t r = t.begin(0);
    EXPECT_EQ(t.acquireLine(r, 0x1000, false), CcDecision::Granted);
    EXPECT_EQ(t.readSetSize(r), 1u);

    std::uint64_t w = t.begin(1);
    EXPECT_EQ(t.acquireLine(w, 0x1000, true), CcDecision::Granted);
    t.recordWrite(w, 0x1000); // the store path records the write
    t.commit(w);

    EXPECT_FALSE(t.validateReads(r));
    EXPECT_EQ(t.validationFailures.value(), 1u);

    // A fresh incarnation re-reads the new version and validates.
    t.abort(r);
    std::uint64_t r2 = t.begin(0);
    EXPECT_EQ(t.acquireLine(r2, 0x1000, false), CcDecision::Granted);
    EXPECT_TRUE(t.validateReads(r2));
    t.commit(r2);
}

TEST(TxnTrackerCc, Tl2ReadOfWriteLockedLineWaits)
{
    // Encounter-time writers still lock under TL2; a read of a
    // locked line can't take a stable version, so the reader waits.
    TxnTracker t;
    t.setCcMode(CcMode::Tl2);
    std::uint64_t w = t.begin(0);
    std::uint64_t r = t.begin(1);
    EXPECT_EQ(t.acquireLine(w, 0x1000, true), CcDecision::Granted);
    EXPECT_EQ(t.acquireLine(r, 0x1000, false), CcDecision::Wait);
    t.commit(w);
    EXPECT_EQ(t.acquireLine(r, 0x1000, false), CcDecision::Granted);
    EXPECT_TRUE(t.validateReads(r));
}

TEST(TxnTrackerCc, NoneModeSkipsTheLayerEntirely)
{
    // With CC off the thread API never reaches acquireLine (the
    // awaitable short-circuits); validation is trivially true and no
    // lock state accumulates.
    TxnTracker t;
    ASSERT_EQ(t.ccMode(), CcMode::None);
    std::uint64_t a = t.begin(0);
    t.recordWrite(a, 0x1000);
    EXPECT_TRUE(t.validateReads(a));
    EXPECT_EQ(t.readSetSize(a), 0u);
    t.commit(a);
    EXPECT_EQ(t.lockAcquires.value(), 0u);
    EXPECT_EQ(t.lockOwnerOf(0x1000), 0u);
    EXPECT_EQ(t.lineVersion(0x1000), 0u)
        << "no version clock churn with CC disabled";
}

// ---------------------------- Recovery ---------------------------

namespace
{

/** In-image log writer used to fabricate crash states. */
class ImageLog
{
  public:
    ImageLog(mem::BackingStore &image, const AddressMap &map)
        : image(image), map(map)
    {
        slots = (map.logSize - LogRegion::kHeaderBytes) /
                LogRecord::kSlotBytes;
        std::uint64_t magic = LogRegion::kMagic;
        image.write(map.logBase(), 8, &magic);
        image.write(map.logBase() + 8, 8, &slots);
    }

    void
    append(const LogRecord &rec)
    {
        std::uint8_t img[LogRecord::kSlotBytes];
        rec.serialize(img, (pass & 1) != 0);
        image.write(slotAddr(tail), sizeof(img), img);
        tail = (tail + 1) % slots;
        if (tail == 0)
            ++pass;
    }

    /** Write only the payload (a torn record: header missing). */
    void
    appendTorn(const LogRecord &rec)
    {
        std::uint8_t img[LogRecord::kSlotBytes];
        rec.serialize(img, (pass & 1) != 0);
        image.write(slotAddr(tail) + 8, sizeof(img) - 8, img + 8);
        tail = (tail + 1) % slots;
        if (tail == 0)
            ++pass;
    }

    Addr
    slotAddr(std::uint64_t slot) const
    {
        return map.logBase() + LogRegion::kHeaderBytes +
               slot * LogRecord::kSlotBytes;
    }

    std::uint64_t slots = 0;

  private:
    mem::BackingStore &image;
    AddressMap map;
    std::uint64_t tail = 0;
    std::uint64_t pass = 1;
};

struct Fixture
{
    AddressMap map;
    mem::BackingStore image;
    ImageLog log;

    Fixture()
        : map(makeMap()), image(map.nvramBase, 1 << 22),
          log(image, map)
    {
    }

    static AddressMap
    makeMap()
    {
        AddressMap m;
        m.nvramSize = 1 << 22;
        m.logSize = 4096;
        return m;
    }

    Addr data(std::uint64_t i) const { return map.heapBase() + i * 8; }
};

} // namespace

TEST(Recovery, EmptyLogIsNoop)
{
    Fixture f;
    f.image.write64(f.data(0), 42);
    auto report = Recovery::run(f.image, f.map);
    EXPECT_TRUE(report.headerValid);
    EXPECT_EQ(report.validRecords, 0u);
    EXPECT_EQ(f.image.read64(f.data(0)), 42u);
}

TEST(Recovery, InvalidHeaderIsRejected)
{
    Fixture f;
    f.image.write64(f.map.logBase(), 0x1234); // corrupt magic
    auto report = Recovery::run(f.image, f.map);
    EXPECT_FALSE(report.headerValid);
}

TEST(Recovery, RedoAppliesCommittedTx)
{
    Fixture f;
    f.image.write64(f.data(0), 1); // stale value in NVRAM
    f.log.append(LogRecord::update(0, 10, f.data(0), 8, 1, 99));
    f.log.append(LogRecord::commit(0, 10));
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.committedTxns, 1u);
    EXPECT_EQ(report.redoApplied, 1u);
    EXPECT_EQ(f.image.read64(f.data(0)), 99u);
}

TEST(Recovery, UndoRollsBackUncommittedTx)
{
    Fixture f;
    f.image.write64(f.data(1), 55); // partially-stolen new value
    f.log.append(LogRecord::update(0, 11, f.data(1), 8, 7, 55));
    // No commit record: crash mid-transaction.
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.uncommittedTxns, 1u);
    EXPECT_EQ(report.undoApplied, 1u);
    EXPECT_EQ(f.image.read64(f.data(1)), 7u);
}

TEST(Recovery, UndoAppliedInReverseOrder)
{
    Fixture f;
    f.image.write64(f.data(2), 30);
    // Same address updated twice by one uncommitted tx: 10 -> 20 ->
    // 30. Correct rollback restores 10.
    f.log.append(LogRecord::update(0, 12, f.data(2), 8, 10, 20));
    f.log.append(LogRecord::update(0, 12, f.data(2), 8, 20, 30));
    Recovery::run(f.image, f.map);
    EXPECT_EQ(f.image.read64(f.data(2)), 10u);
}

TEST(Recovery, MixedCommittedAndUncommitted)
{
    Fixture f;
    f.image.write64(f.data(0), 0);
    f.image.write64(f.data(1), 111); // uncommitted tx's dirty value
    f.log.append(LogRecord::update(0, 1, f.data(0), 8, 0, 5));
    f.log.append(LogRecord::update(1, 2, f.data(1), 8, 100, 111));
    f.log.append(LogRecord::commit(0, 1));
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.committedTxns, 1u);
    EXPECT_EQ(report.uncommittedTxns, 1u);
    EXPECT_EQ(f.image.read64(f.data(0)), 5u);   // redone
    EXPECT_EQ(f.image.read64(f.data(1)), 100u); // undone
}

TEST(Recovery, TornRecordIsIgnored)
{
    Fixture f;
    f.image.write64(f.data(3), 77);
    f.log.appendTorn(
        LogRecord::update(0, 13, f.data(3), 8, 1, 77));
    auto report = Recovery::run(f.image, f.map);
    // The torn record has no written marker: not replayed.
    EXPECT_EQ(report.validRecords, 0u);
    EXPECT_EQ(f.image.read64(f.data(3)), 77u);
}

TEST(Recovery, TornCommitRecordRollsTxBack)
{
    // A crash can tear the commit record itself. The transaction's
    // updates are intact, but without a durable commit marker the tx
    // must be treated as uncommitted and its stolen data undone —
    // treating a torn commit as committed would expose a non-atomic
    // state the differential oracle rejects.
    Fixture f;
    f.image.write64(f.data(9), 88); // stolen new value
    f.log.append(LogRecord::update(0, 60, f.data(9), 8, 44, 88));
    f.log.appendTorn(LogRecord::commit(0, 60));
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.committedTxns, 0u);
    EXPECT_EQ(report.uncommittedTxns, 1u);
    EXPECT_EQ(report.undoApplied, 1u);
    EXPECT_EQ(f.image.read64(f.data(9)), 44u);
}

TEST(Recovery, TornCommitFollowedByIntactCommitStillCommits)
{
    // Only the torn marker is ignored: if the commit record was
    // re-written intact later (e.g. a retried flush landed), the
    // transaction is committed and redo applies.
    Fixture f;
    f.image.write64(f.data(9), 44); // stale value
    f.log.append(LogRecord::update(0, 61, f.data(9), 8, 44, 88));
    f.log.appendTorn(LogRecord::commit(0, 61));
    f.log.append(LogRecord::commit(0, 61));
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.committedTxns, 1u);
    EXPECT_EQ(f.image.read64(f.data(9)), 88u);
}

TEST(Recovery, RacingTxsOnOneLineTornCommitUndoesOnlyTheLoser)
{
    // Two transactions raced on the same word (serialized by the CC
    // layer: tx 70 committed, then tx 71 overwrote and its commit
    // record tore in the crash). Recovery must undo only the loser —
    // restoring tx 70's committed value, not the original — and redo
    // the winner. This is the serializability oracle's crash rule in
    // log form: the surviving image equals a commit-order prefix.
    Fixture f;
    f.image.write64(f.data(3), 222); // tx 71's stolen value
    f.log.append(LogRecord::update(0, 70, f.data(3), 8, 100, 111));
    f.log.append(LogRecord::commit(0, 70));
    f.log.append(LogRecord::update(1, 71, f.data(3), 8, 111, 222));
    f.log.appendTorn(LogRecord::commit(1, 71));
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.committedTxns, 1u);
    EXPECT_EQ(report.uncommittedTxns, 1u);
    EXPECT_EQ(f.image.read64(f.data(3)), 111u);
}

TEST(Recovery, RacingTxsBothTornCommitsRollBackToTheirUndoChain)
{
    // Same race, but both commit records tore: both are uncommitted,
    // and the undo chain (applied newest-first across transactions)
    // walks the line back to its pre-race value.
    Fixture f;
    f.image.write64(f.data(3), 222);
    f.log.append(LogRecord::update(0, 72, f.data(3), 8, 100, 111));
    f.log.appendTorn(LogRecord::commit(0, 72));
    f.log.append(LogRecord::update(1, 73, f.data(3), 8, 111, 222));
    f.log.appendTorn(LogRecord::commit(1, 73));
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.committedTxns, 0u);
    EXPECT_EQ(report.uncommittedTxns, 2u);
    EXPECT_EQ(f.image.read64(f.data(3)), 100u);
}

TEST(Recovery, WindowSpansWrapInOrder)
{
    Fixture f;
    // Fill the log exactly once, then two more records of a second
    // pass. The oldest live records sit just past the wrap point.
    std::uint64_t n = f.log.slots;
    f.image.write64(f.data(4), 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        f.log.append(
            LogRecord::update(0, 20, f.data(4), 8, i, i + 1));
    }
    f.log.append(
        LogRecord::update(0, 20, f.data(4), 8, n, n + 1));
    f.log.append(LogRecord::commit(0, 20));
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.committedTxns, 1u);
    // Redo must end at the newest value, which lives in pass 2.
    EXPECT_EQ(f.image.read64(f.data(4)), n + 1);
}

TEST(Recovery, CommitOnlyWindowIsHarmless)
{
    Fixture f;
    f.image.write64(f.data(5), 13);
    f.log.append(LogRecord::commit(0, 30));
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.committedTxns, 1u);
    EXPECT_EQ(report.redoApplied, 0u);
    EXPECT_EQ(f.image.read64(f.data(5)), 13u);
}

TEST(Recovery, TruncatesLogAfterReplay)
{
    Fixture f;
    f.log.append(LogRecord::update(0, 1, f.data(0), 8, 0, 1));
    f.log.append(LogRecord::commit(0, 1));
    Recovery::run(f.image, f.map);
    auto second = Recovery::run(f.image, f.map);
    EXPECT_EQ(second.validRecords, 0u);
}

TEST(Recovery, IdempotentWithoutTruncation)
{
    Fixture f;
    f.image.write64(f.data(0), 1);
    f.image.write64(f.data(1), 200);
    f.log.append(LogRecord::update(0, 1, f.data(0), 8, 1, 50));
    f.log.append(LogRecord::commit(0, 1));
    f.log.append(LogRecord::update(0, 2, f.data(1), 8, 2, 200));

    Recovery::run(f.image, f.map, /*truncateLog=*/false);
    std::uint64_t v0 = f.image.read64(f.data(0));
    std::uint64_t v1 = f.image.read64(f.data(1));
    Recovery::run(f.image, f.map, /*truncateLog=*/false);
    EXPECT_EQ(f.image.read64(f.data(0)), v0);
    EXPECT_EQ(f.image.read64(f.data(1)), v1);
    EXPECT_EQ(v0, 50u);
    EXPECT_EQ(v1, 2u);
}

TEST(Recovery, TxIdReuseSeparatedByCommit)
{
    Fixture f;
    f.image.write64(f.data(6), 3);
    // Generation 1 of txid 40 commits; generation 2 crashes.
    f.log.append(LogRecord::update(0, 40, f.data(6), 8, 1, 2));
    f.log.append(LogRecord::commit(0, 40));
    f.log.append(LogRecord::update(0, 40, f.data(6), 8, 2, 3));
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.committedTxns, 1u);
    EXPECT_EQ(report.uncommittedTxns, 1u);
    // Redo of gen 1 writes 2; undo of gen 2 also restores 2.
    EXPECT_EQ(f.image.read64(f.data(6)), 2u);
}

TEST(Recovery, CommittedUndoOnlyTxAppliesNothing)
{
    // Software undo logging: a committed transaction's records carry
    // no redo values (the data was clwb'd before the commit record),
    // so recovery must leave the in-NVRAM values untouched.
    Fixture f;
    f.image.write64(f.data(7), 999); // the flushed new value
    f.log.append(LogRecord::update(0, 50, f.data(7), 8, 9,
                                   std::nullopt));
    f.log.append(LogRecord::commit(0, 50));
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.committedTxns, 1u);
    EXPECT_EQ(report.redoApplied, 0u);
    EXPECT_EQ(f.image.read64(f.data(7)), 999u);
}

TEST(Recovery, UncommittedRedoOnlyTxCannotRollBack)
{
    // Redo-only logging cannot undo stolen data: recovery applies
    // nothing for the uncommitted tx (this is why redo logging alone
    // cannot tolerate steal, Section II-B).
    Fixture f;
    f.image.write64(f.data(8), 77); // stolen new value
    f.log.append(LogRecord::update(0, 51, f.data(8), 8,
                                   std::nullopt, 77));
    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.uncommittedTxns, 1u);
    EXPECT_EQ(report.undoApplied, 0u);
    EXPECT_EQ(f.image.read64(f.data(8)), 77u);
}

// --------------- cross-shard commit atomicity (shardlab) ---------

namespace
{

/**
 * Hand-built multi-shard log image: one circular region per shard,
 * records appended per shard with the same torn-bit pass parity the
 * real LogRegion uses.
 */
class ShardedImageLog
{
  public:
    ShardedImageLog(mem::BackingStore &image, const AddressMap &map)
        : image(image), map(map), shards(map.logRegionCount())
    {
        shardBytes = map.logSize / shards;
        slots = (shardBytes - LogRegion::kHeaderBytes) /
                LogRecord::kSlotBytes;
        tails.assign(shards, 0);
        passes.assign(shards, 1);
        for (std::uint32_t s = 0; s < shards; ++s) {
            std::uint64_t magic = LogRegion::kMagic;
            image.write(base(s), 8, &magic);
            image.write(base(s) + 8, 8, &slots);
        }
    }

    Addr base(std::uint32_t s) const
    {
        return map.logBase() + s * shardBytes;
    }

    void
    append(std::uint32_t s, const LogRecord &rec, bool torn = false)
    {
        std::uint8_t img[LogRecord::kSlotBytes];
        rec.serialize(img, (passes[s] & 1) != 0);
        Addr a = base(s) + LogRegion::kHeaderBytes +
                 tails[s] * LogRecord::kSlotBytes;
        if (torn) {
            // Payload only — the header word with the written
            // marker never arrived (a torn record).
            image.write(a + 8, sizeof(img) - 8, img + 8);
        } else {
            image.write(a, sizeof(img), img);
        }
        tails[s] = (tails[s] + 1) % slots;
        if (tails[s] == 0)
            ++passes[s];
    }

  private:
    mem::BackingStore &image;
    AddressMap map;
    std::uint32_t shards;
    std::uint64_t shardBytes = 0;
    std::uint64_t slots = 0;
    std::vector<std::uint64_t> tails;
    std::vector<std::uint64_t> passes;
};

struct ShardedFixture
{
    AddressMap map;
    mem::BackingStore image;
    ShardedImageLog log;

    explicit ShardedFixture(std::uint32_t shards)
        : map(makeMap(shards)), image(map.nvramBase, 1 << 22),
          log(image, map)
    {
    }

    static AddressMap
    makeMap(std::uint32_t shards)
    {
        AddressMap m;
        m.nvramSize = 1 << 22;
        m.logSize = 8192;
        m.logShards = shards;
        return m;
    }

    /** A heap data line owned by shard @p s (shard = line mod N). */
    Addr
    lineForShard(std::uint32_t s) const
    {
        for (std::uint64_t k = 0;; ++k) {
            Addr a = map.heapBase() + k * 64;
            if ((a >> 6) % map.logShards == s)
                return a;
        }
    }
};

/**
 * One cross-shard transaction, every persist boundary of the commit
 * protocol. The protocol's persist order is: per-shard update
 * records, then the participants' prepare records, then the owner's
 * masked commit. A crash after any strict prefix must recover
 * all-aborted; only the full sequence (commit durable) recovers
 * all-committed — never a mix.
 */
void
crossShardBoundarySweep(std::uint32_t shards)
{
    const std::uint64_t kOld = 0xAA00, kNew = 0xBB00;
    const std::uint64_t mask = (1ULL << shards) - 1;
    // Persist sequence: updates[0..N-1], prepares[1..N-1], commit.
    const std::size_t total = shards + (shards - 1) + 1;

    for (std::size_t prefix = 0; prefix <= total; ++prefix) {
        ShardedFixture f(shards);
        std::vector<Addr> lines(shards);
        std::size_t written = 0;
        auto inPrefix = [&] { return written++ < prefix; };

        for (std::uint32_t s = 0; s < shards; ++s) {
            lines[s] = f.lineForShard(s);
            bool logged = inPrefix();
            if (logged) {
                f.log.append(s, LogRecord::update(
                                    0, 1, lines[s], 8, kOld + s,
                                    kNew + s));
            }
            // Steal: the in-place write may be durable once (and
            // only once) its log record is — model the worst case.
            f.image.write64(lines[s], logged ? kNew + s : kOld + s);
        }
        for (std::uint32_t s = 1; s < shards; ++s) {
            if (inPrefix())
                f.log.append(s, LogRecord::prepare(0, 1, 1, 1));
        }
        bool committed = inPrefix();
        if (committed) {
            f.log.append(0,
                         LogRecord::commitMasked(0, 1, 1, 1, mask));
        }

        auto report = Recovery::run(f.image, f.map);
        for (std::uint32_t s = 0; s < shards; ++s) {
            EXPECT_EQ(f.image.read64(lines[s]),
                      committed ? kNew + s : kOld + s)
                << "shards=" << shards << " prefix=" << prefix
                << " shard=" << s << " mixed transaction state";
        }
        EXPECT_EQ(report.committedTxns, committed ? 1u : 0u)
            << "shards=" << shards << " prefix=" << prefix;

        // Re-entrant truncation: a second recovery over the
        // truncated shards is a no-op on the data image.
        auto again = Recovery::run(f.image, f.map);
        EXPECT_EQ(again.validRecords, 0u);
        for (std::uint32_t s = 0; s < shards; ++s) {
            EXPECT_EQ(f.image.read64(lines[s]),
                      committed ? kNew + s : kOld + s);
        }
    }
}

} // namespace

TEST(ShardedRecovery, CrossShardCommitBoundarySweepTwoShards)
{
    crossShardBoundarySweep(2);
}

TEST(ShardedRecovery, CrossShardCommitBoundarySweepFourShards)
{
    crossShardBoundarySweep(4);
}

TEST(ShardedRecovery, TornMaskedCommitAbortsAllShards)
{
    // The full protocol ran but the masked commit record itself is
    // torn: the atomic commit point never became durable, so every
    // shard's slice must roll back.
    for (std::uint32_t shards : {2u, 4u}) {
        ShardedFixture f(shards);
        std::vector<Addr> lines(shards);
        for (std::uint32_t s = 0; s < shards; ++s) {
            lines[s] = f.lineForShard(s);
            f.log.append(s, LogRecord::update(0, 1, lines[s], 8,
                                              0xAA00 + s,
                                              0xBB00 + s));
            f.image.write64(lines[s], 0xBB00 + s);
        }
        for (std::uint32_t s = 1; s < shards; ++s)
            f.log.append(s, LogRecord::prepare(0, 1, 1, 1));
        f.log.append(0,
                     LogRecord::commitMasked(0, 1, 1, 1,
                                             (1ULL << shards) - 1),
                     /*torn=*/true);

        auto report = Recovery::run(f.image, f.map);
        EXPECT_EQ(report.committedTxns, 0u);
        for (std::uint32_t s = 0; s < shards; ++s)
            EXPECT_EQ(f.image.read64(lines[s]), 0xAA00 + s)
                << "shards=" << shards << " shard=" << s;
    }
}

TEST(ShardedRecovery, TornPrepareQuarantinesInsteadOfMixing)
{
    // The commit record is durable but one participant's prepare is
    // torn while that shard still holds the tx's open update slice.
    // Replaying the other slices and leaving (or undoing) the torn
    // shard's would both produce a mixed image — the recovery must
    // quarantine the transaction and pin its slices instead.
    ShardedFixture f(2);
    Addr l0 = f.lineForShard(0), l1 = f.lineForShard(1);
    f.log.append(0, LogRecord::update(0, 1, l0, 8, 0xAA, 0xBB));
    f.log.append(1, LogRecord::update(0, 1, l1, 8, 0xCC, 0xDD));
    f.image.write64(l0, 0xBB);
    f.image.write64(l1, 0xDD);
    f.log.append(1, LogRecord::prepare(0, 1, 1, 1), /*torn=*/true);
    f.log.append(0, LogRecord::commitMasked(0, 1, 1, 1, 0b11));

    auto report = Recovery::run(f.image, f.map);
    EXPECT_EQ(report.quarantinedTxns, 1u);
    // Pinned: neither slice replayed nor rolled back — the image
    // keeps whatever the crash left (here: the stolen new values).
    EXPECT_EQ(f.image.read64(l0), 0xBBu);
    EXPECT_EQ(f.image.read64(l1), 0xDDu);
}
