/**
 * @file
 * Crash-sweep subsystem tests: a sampled crash-point sweep per
 * persistence mode (which exercises the recovery-idempotence
 * invariants, I6, in every mode), the cross-mode oracle (identical
 * single-threaded traces must leave identical heap images under
 * every scheme), and the fault-injection self-test (a deliberately
 * broken recovery must be caught and minimized).
 *
 * Set SNF_CRASH_FULL=1 (the ctest "crash" label does) to sweep every
 * harvested crash point instead of a deterministic sample.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "crashlab/report.hh"
#include "crashlab/sweep.hh"
#include "persist/recovery.hh"
#include "workloads/driver.hh"

using namespace snf;
using namespace snf::crashlab;
using namespace snf::workloads;

namespace
{

/** Crash points per cell: a small sample, or all under the label. */
std::size_t
sampleCap()
{
    const char *full = std::getenv("SNF_CRASH_FULL");
    return (full && full[0] == '1') ? 0 : 12;
}

SweepConfig
smallSweep(PersistMode mode)
{
    SweepConfig cfg;
    cfg.run.workload = "sps";
    cfg.run.mode = mode;
    cfg.run.params.threads = 2;
    cfg.run.params.txPerThread = 30;
    cfg.run.params.seed = 11;
    cfg.jobs = 2;
    cfg.maxPoints = sampleCap();
    return cfg;
}

} // namespace

// Every persistence mode must survive its sampled sweep: recovery is
// idempotent (replay twice = replay once; recover the recovered
// image = no-op), the counting invariants hold against the probe
// trace, and — for the failure-atomic modes — the workload verifies
// on every recovered image.
TEST(CrashSweep, AllModesPassSampledSweep)
{
    for (PersistMode mode : kAllModes) {
        SCOPED_TRACE(persistModeName(mode));
        SweepResult res = runCrashSweep(smallSweep(mode));
        EXPECT_TRUE(res.refVerified) << res.refVerifyMessage;
        EXPECT_GT(res.pointsHarvested, 0u);
        EXPECT_EQ(res.pointsFailed, 0u)
            << res.failures.front().violations.front().invariant
            << ": "
            << res.failures.front().violations.front().detail;
    }
}

// The acceptance cell from the tooling docs: sps under fwb, a
// larger sweep, multiple workers.
TEST(CrashSweep, FwbAcceptanceCell)
{
    SweepConfig cfg = smallSweep(PersistMode::Fwb);
    cfg.run.params.txPerThread = 50;
    cfg.jobs = 4;
    cfg.maxPoints = sampleCap() ? 40 : 0;
    SweepResult res = runCrashSweep(cfg);
    EXPECT_TRUE(res.passed());
    EXPECT_GE(res.pointsTested, std::min<std::size_t>(
                                    res.pointsHarvested, 40));
}

// Cross-mode oracle: a single-threaded workload issues the same
// logical operation sequence under every persistence scheme (only
// timing differs), so after a graceful run + flush the heap images
// must agree byte for byte with the non-persistent golden run — and
// recovering that flushed image (all transactions committed) must
// not change the heap.
TEST(CrashSweep, CrossModeOracle)
{
    const PersistMode modes[] = {
        PersistMode::UnsafeRedo, PersistMode::UnsafeUndo,
        PersistMode::RedoClwb,   PersistMode::UndoClwb,
        PersistMode::Hwl,        PersistMode::Fwb,
    };

    WorkloadParams params;
    params.threads = 1;
    params.txPerThread = 40;
    params.seed = 23;

    auto runCell = [&](PersistMode mode, mem::BackingStore *imageOut,
                       Addr *heapBase, std::uint64_t *heapBytes,
                       AddressMap *mapOut) {
        SystemConfig cfg = SystemConfig::scaled();
        System sys(cfg, mode);
        auto wl = makeWorkload("sps");
        wl->setup(sys, params);
        sys.spawn(0, [&](Thread &t) -> sim::Co<void> {
            return wl->thread(sys, t, params);
        });
        Tick end = sys.run();
        sys.flushAll(end);
        std::string why;
        EXPECT_TRUE(wl->verify(sys.mem().nvram().store(), &why))
            << persistModeName(mode) << ": " << why;
        *imageOut = sys.mem().nvram().store();
        *heapBase = sys.heap().base();
        *heapBytes = sys.heap().allocated();
        *mapOut = sys.config().map;
    };

    mem::BackingStore golden(0, 0);
    Addr goldenHeap = 0;
    std::uint64_t goldenBytes = 0;
    AddressMap goldenMap;
    runCell(PersistMode::NonPers, &golden, &goldenHeap, &goldenBytes,
            &goldenMap);
    ASSERT_GT(goldenBytes, 0u);

    for (PersistMode mode : modes) {
        SCOPED_TRACE(persistModeName(mode));
        mem::BackingStore image(0, 0);
        Addr heapBase = 0;
        std::uint64_t heapBytes = 0;
        AddressMap map;
        runCell(mode, &image, &heapBase, &heapBytes, &map);

        // Identical allocation pattern and final heap contents.
        ASSERT_EQ(heapBase, goldenHeap);
        ASSERT_EQ(heapBytes, goldenBytes);
        auto diff =
            image.firstDifference(golden, heapBase, heapBytes);
        EXPECT_FALSE(diff.has_value())
            << "heap differs from golden at 0x" << std::hex << *diff;

        // Recovery of a fully-committed, fully-flushed image is a
        // heap no-op (redo replay rewrites the values already there).
        mem::BackingStore recovered = image;
        persist::Recovery::run(recovered, map);
        auto rdiff =
            recovered.firstDifference(image, heapBase, heapBytes);
        EXPECT_FALSE(rdiff.has_value())
            << "recovery changed the heap at 0x" << std::hex
            << *rdiff;
    }
}

// Contended shared-data programs: the sweep crashes a conflicting
// prog-workload run at harvested points and recovery must still
// produce a commit-order-consistent image at every one — under both
// CC schemes. Deadlock/validation aborts and their undo chains are
// live at many of these points, so this exercises rollback records
// interleaved with the racing commits.
TEST(CrashSweep, ContendedProgSweepPassesUnderBothCcSchemes)
{
    for (CcMode cc : {CcMode::TwoPhase, CcMode::Tl2}) {
        for (PersistMode mode :
             {PersistMode::UndoClwb, PersistMode::Fwb}) {
            SCOPED_TRACE(std::string(ccModeName(cc)) + "/" +
                         persistModeName(mode));
            SweepConfig cfg;
            cfg.run.workload = "prog";
            cfg.run.mode = mode;
            cfg.run.params.threads = 2;
            cfg.run.params.txPerThread = 6;
            cfg.run.params.seed = 7;
            cfg.run.params.conflictRate = 0.6;
            cfg.run.sys.persist.ccMode = cc;
            cfg.jobs = 2;
            cfg.maxPoints = sampleCap();
            SweepResult res = runCrashSweep(cfg);
            EXPECT_TRUE(res.refVerified) << res.refVerifyMessage;
            EXPECT_GT(res.pointsHarvested, 0u);
            EXPECT_EQ(res.pointsFailed, 0u)
                << res.failures.front()
                       .violations.front()
                       .invariant
                << ": "
                << res.failures.front().violations.front().detail;
        }
    }
}

// Self-test of the detector: recovery that skips the undo phase must
// be caught under undo-clwb (whose commit protocol makes the
// data-durable-before-commit-record window a certainty) and
// minimized to a concrete tick; skipping redo must be caught under
// hwl (committed effects still volatile at the crash need redo).
TEST(CrashSweep, InjectedSkipUndoCaughtAndMinimized)
{
    SweepConfig cfg = smallSweep(PersistMode::UndoClwb);
    cfg.run.params.txPerThread = 40;
    cfg.maxPoints = sampleCap() ? 150 : 0;
    cfg.recovery.faultSkipUndo = true;
    SweepResult res = runCrashSweep(cfg);
    EXPECT_GT(res.pointsFailed, 0u);
    ASSERT_TRUE(res.minimizedTick.has_value());
    EXPECT_GT(*res.minimizedTick, 0u);
    EXPECT_LE(*res.minimizedTick, res.failures.front().point.tick);
    EXPECT_FALSE(res.minimizedDetail.empty());
}

TEST(CrashSweep, InjectedSkipRedoCaughtAndMinimized)
{
    SweepConfig cfg = smallSweep(PersistMode::Hwl);
    cfg.run.params.txPerThread = 40;
    cfg.maxPoints = sampleCap() ? 150 : 0;
    cfg.recovery.faultSkipRedo = true;
    SweepResult res = runCrashSweep(cfg);
    EXPECT_GT(res.pointsFailed, 0u);
    ASSERT_TRUE(res.minimizedTick.has_value());
    EXPECT_FALSE(res.minimizedDetail.empty());
}

// The driver's crash path honors the RunSpec recovery options (this
// is what snfcrash's --inject-* flags ride on).
TEST(CrashSweep, DriverForwardsRecoveryOptions)
{
    RunSpec spec;
    spec.workload = "sps";
    spec.mode = PersistMode::UndoClwb;
    spec.params.threads = 1;
    spec.params.txPerThread = 30;
    spec.sys.persist.crashJournal = true;
    spec.crashAt = 5000;
    spec.recovery.faultSkipUndo = true;
    spec.recovery.faultSkipRedo = true;
    RunOutcome out = runWorkload(spec);
    ASSERT_TRUE(out.crashed);
    EXPECT_EQ(out.recovery.undoApplied, 0u);
    EXPECT_EQ(out.recovery.redoApplied, 0u);
}

// JSON report: escaping and document shape.
TEST(CrashSweep, JsonReport)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");

    CellResult cell;
    cell.workload = "sps";
    cell.mode = PersistMode::Fwb;
    cell.seed = 1;
    cell.threads = 2;
    cell.txPerThread = 10;
    cell.sweep.pointsHarvested = 5;
    cell.sweep.pointsTested = 5;
    PointOutcome fail;
    fail.point.tick = 42;
    fail.violations.push_back(Violation{"verify", "bad \"value\""});
    cell.sweep.failures.push_back(fail);
    cell.sweep.pointsFailed = 1;
    cell.sweep.minimizedTick = 40;
    cell.sweep.minimizedDetail = "tick 40\n";

    std::ostringstream os;
    writeJsonReport(os, {cell});
    std::string json = os.str();
    EXPECT_NE(json.find("\"mode\": \"fwb\""), std::string::npos);
    EXPECT_NE(json.find("\"tick\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"minimized_tick\": 40"), std::string::npos);
    EXPECT_NE(json.find("bad \\\"value\\\""), std::string::npos);
    EXPECT_NE(json.find("\"cells_failed\": 1"), std::string::npos);
}
