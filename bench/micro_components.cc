/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * event queue scheduling, PRNG, cache lookup/install, device access,
 * log record serialization, and end-to-end simulated transactions
 * per host-second.
 */

#include <benchmark/benchmark.h>

#include "core/system.hh"
#include "mem/cache.hh"
#include "mem/mem_device.hh"
#include "persist/log_record.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/driver.hh"

using namespace snf;

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue q;
    Tick now = 0;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.schedule(now + 1 + (i * 7) % 32,
                       [&](Tick) { ++fired; });
        now += 32;
        q.runUntil(now);
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueue);

void
BM_Rng(benchmark::State &state)
{
    sim::Rng rng(42);
    std::uint64_t acc = 0;
    for (auto _ : state)
        acc ^= rng.below(1000000);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Rng);

void
BM_Zipf(benchmark::State &state)
{
    sim::Rng rng(42);
    sim::Zipf zipf(100000, 0.8);
    std::uint64_t acc = 0;
    for (auto _ : state)
        acc ^= zipf.sample(rng);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Zipf);

void
BM_CacheLookup(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    mem::Cache cache("bench_l1", cfg);
    sim::Rng rng(7);
    for (int i = 0; i < 256; ++i) {
        Addr line = (rng.below(512)) * 64;
        mem::CacheLine *slot = cache.victimFor(line);
        if (slot->valid)
            cache.invalidate(slot);
        cache.install(slot, line);
    }
    std::uint64_t hits = 0;
    for (auto _ : state) {
        Addr line = (rng.below(512)) * 64;
        if (cache.find(line))
            ++hits;
    }
    benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_CacheLookup);

void
BM_DeviceAccess(benchmark::State &state)
{
    MemDeviceConfig cfg;
    cfg.sizeBytes = 1ULL << 30;
    mem::MemDevice dev("bench_nvram", cfg, 0);
    sim::Rng rng(9);
    std::uint8_t buf[64] = {1, 2, 3};
    Tick now = 0;
    for (auto _ : state) {
        Addr a = (rng.below(1 << 20)) * 64;
        auto res = dev.access((now & 1) != 0, a, 64, buf, buf, now);
        now = res.done;
    }
    benchmark::DoNotOptimize(now);
}
BENCHMARK(BM_DeviceAccess);

void
BM_LogRecordSerialize(benchmark::State &state)
{
    persist::LogRecord rec = persist::LogRecord::update(
        1, 7, 0x100000000ULL, 8, 0x1234, 0x5678);
    std::uint8_t img[persist::LogRecord::kSlotBytes];
    for (auto _ : state) {
        rec.serialize(img, true);
        bool torn = false;
        auto parsed = persist::LogRecord::deserialize(img, torn);
        benchmark::DoNotOptimize(parsed);
    }
}
BENCHMARK(BM_LogRecordSerialize);

void
BM_EndToEndTransactions(benchmark::State &state)
{
    setQuiet(true);
    auto mode = static_cast<PersistMode>(state.range(0));
    std::uint64_t tx = 0;
    for (auto _ : state) {
        workloads::RunSpec spec;
        spec.workload = "sps";
        spec.mode = mode;
        spec.params.threads = 2;
        spec.params.txPerThread = 500;
        spec.params.footprint = 4096;
        spec.sys = SystemConfig::scaled(2);
        spec.verifyAtEnd = false;
        auto o = workloads::runWorkload(spec);
        tx += o.stats.committedTx;
    }
    state.counters["sim_tx_per_s"] = benchmark::Counter(
        static_cast<double>(tx), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndTransactions)
    ->Arg(static_cast<int>(PersistMode::NonPers))
    ->Arg(static_cast<int>(PersistMode::UndoClwb))
    ->Arg(static_cast<int>(PersistMode::Fwb))
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
