/**
 * @file
 * Figure 10: WHISPER-style real-workload results — IPC, dynamic
 * memory energy consumption, transaction throughput, and NVRAM write
 * traffic, normalized to unsafe-base, for the full design (fwb) with
 * hwl and non-pers as references.
 */

#include "bench/common.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::bench;

int
main()
{
    setQuiet(true);
    std::printf("== Figure 10: WHISPER workloads (normalized to "
                "unsafe-base; 4 threads) ==\n");
    printTableII();

    std::printf("%-10s %7s | %8s %8s %8s %8s | %8s %8s | %8s\n",
                "workload", "mode", "IPC", "energyRd", "thrpt",
                "trafRd", "bestClwb", "fwb/clwb", "fwb/nonp");

    const std::uint32_t threads = 4;
    for (const auto &wl : workloads::whisperNames()) {
        Cell base = unsafeBase(wl, threads);
        Cell nonp = runCell(wl, PersistMode::NonPers, threads);
        Cell redo = runCell(wl, PersistMode::RedoClwb, threads);
        Cell undo = runCell(wl, PersistMode::UndoClwb, threads);
        const Cell &clwb =
            redo.throughput() >= undo.throughput() ? redo : undo;

        for (PersistMode m : {PersistMode::Hwl, PersistMode::Fwb}) {
            Cell c = runCell(wl, m, threads);
            std::printf(
                "%-10s %7s | %8.2f %8.2f %8.2f %8.2f | %8.2f "
                "%8.2f | %8.2f\n",
                wl.c_str(), persistModeName(m), c.ipc() / base.ipc(),
                base.memDynEnergy() / c.memDynEnergy(),
                c.throughput() / base.throughput(),
                c.nvramWriteBytes() > 0
                    ? base.nvramWriteBytes() / c.nvramWriteBytes()
                    : 0.0,
                clwb.throughput() / base.throughput(),
                c.throughput() / clwb.throughput(),
                c.throughput() / nonp.throughput());
            std::fflush(stdout);
        }
    }

    std::printf("\nExpected shape (paper): fwb up to 2.7x the "
                "throughput of the best clwb-based sw logging,\n"
                "within ~73%% of non-pers; up to 2.43x dynamic "
                "memory energy reduction.\n");
    return 0;
}
