/**
 * @file
 * Figure 7: IPC speedup (higher is better) and executed instruction
 * count (lower is better), normalized to unsafe-base, for the five
 * microbenchmarks. The paper's headline: software logging imposes up
 * to 2.5x the instructions of non-pers; the hardware design imposes
 * only the tx_begin/tx_commit library overhead (~tens of percent).
 */

#include "bench/common.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::bench;

int
main()
{
    setQuiet(true);
    std::printf("== Figure 7: IPC speedup and instruction count "
                "(normalized to unsafe-base) ==\n");
    printTableII();

    const PersistMode modes[] = {
        PersistMode::NonPers,  PersistMode::RedoClwb,
        PersistMode::UndoClwb, PersistMode::HwRlog,
        PersistMode::HwUlog,   PersistMode::Hwl,
        PersistMode::Fwb,
    };

    for (std::uint32_t threads : {1u, 4u}) {
        std::printf("--- %u thread(s): IPC speedup ---\n", threads);
        std::printf("%-12s", "benchmark");
        for (PersistMode m : modes)
            std::printf(" %10s", persistModeName(m));
        std::printf("\n");
        std::vector<std::map<PersistMode, Cell>> rows;
        for (const auto &wl : workloads::microbenchNames()) {
            Cell base = unsafeBase(wl, threads);
            std::map<PersistMode, Cell> cells;
            std::printf("%-12s", wl.c_str());
            for (PersistMode m : modes) {
                cells.emplace(m, runCell(wl, m, threads));
                std::printf(" %10.2f",
                            cells.at(m).ipc() / base.ipc());
            }
            cells.emplace(PersistMode::UnsafeRedo, base);
            rows.push_back(std::move(cells));
            std::printf("\n");
            std::fflush(stdout);
        }

        std::printf("--- %u thread(s): instruction count ---\n",
                    threads);
        std::printf("%-12s", "benchmark");
        for (PersistMode m : modes)
            std::printf(" %10s", persistModeName(m));
        std::printf("\n");
        std::size_t i = 0;
        for (const auto &wl : workloads::microbenchNames()) {
            const auto &cells = rows[i++];
            double base = cells.at(PersistMode::UnsafeRedo)
                              .instructions();
            std::printf("%-12s", wl.c_str());
            for (PersistMode m : modes)
                std::printf(" %10.2f",
                            cells.at(m).instructions() / base);
            std::printf("\n");
        }
        std::printf("\n");
    }

    std::printf("Expected shape (paper): sw logging up to 2.5x "
                "non-pers instructions; fwb ~1.3x non-pers;\n"
                "hw modes' IPC well above sw logging.\n");
    return 0;
}
