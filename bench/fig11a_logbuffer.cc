/**
 * @file
 * Figure 11(a): system throughput sensitivity to the log buffer size
 * (hash microbenchmark), across 0/8/15/16/32/64/128/256 entries, with
 * hw-rlog and hw-ulog as reference points. The paper's persistence
 * bound for its configuration is 15 entries; larger buffers keep
 * improving throughput until NVRAM write bandwidth saturates.
 */

#include "bench/common.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::bench;

namespace
{

snf::workloads::RunOutcome
runHash(PersistMode mode, std::uint32_t entries)
{
    workloads::RunSpec spec;
    spec.workload = "hash";
    spec.mode = mode;
    spec.params.threads = 4;
    spec.params.txPerThread = static_cast<std::uint64_t>(
        600 * benchScale());
    if (spec.params.txPerThread == 0)
        spec.params.txPerThread = 1;
    spec.params.footprint = 65536;
    spec.sys = benchConfig(4);
    spec.sys.persist.logBufferEntries = entries;
    spec.verifyAtEnd = false;
    return workloads::runWorkload(spec);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Figure 11(a): throughput vs log buffer size "
                "(hash, 4 threads, fwb) ==\n");
    printTableII();

    double base = runHash(PersistMode::Fwb, 0).stats.txPerMcycle;
    std::printf("%8s %12s %10s %8s\n", "entries", "tx/Mcycle",
                "vs 0-entry", "stalls");
    for (std::uint32_t entries : {0u, 8u, 15u, 16u, 32u, 64u, 128u,
                                  256u}) {
        auto o = runHash(PersistMode::Fwb, entries);
        std::printf("%8u %12.2f %10.2f %8llu\n", entries,
                    o.stats.txPerMcycle, o.stats.txPerMcycle / base,
                    static_cast<unsigned long long>(
                        o.stats.logBufferStalls));
        std::fflush(stdout);
    }
    for (PersistMode m : {PersistMode::HwRlog, PersistMode::HwUlog}) {
        auto o = runHash(m, 15);
        std::printf("%8s %12.2f %10.2f   (reference)\n",
                    persistModeName(m), o.stats.txPerMcycle,
                    o.stats.txPerMcycle / base);
    }

    std::printf("\nExpected shape (paper): ~+10%% at 8 entries, "
                "~+18%% at 15; saturating towards 64+ entries\n"
                "(NVRAM write bandwidth limit).\n");
    return 0;
}
