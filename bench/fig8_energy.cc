/**
 * @file
 * Figure 8: memory dynamic energy reduction (higher is better),
 * normalized to unsafe-base, for the five microbenchmarks. Energy
 * uses the Table II PCM pJ/bit coefficients; processor dynamic energy
 * is not significantly altered across configurations (as the paper
 * observes), so only memory dynamic energy is reported.
 */

#include "bench/common.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::bench;

int
main()
{
    setQuiet(true);
    std::printf("== Figure 8: memory dynamic energy reduction "
                "(unsafe-base / mode; higher is better) ==\n");
    printTableII();

    const PersistMode modes[] = {
        PersistMode::NonPers,  PersistMode::RedoClwb,
        PersistMode::UndoClwb, PersistMode::HwRlog,
        PersistMode::HwUlog,   PersistMode::Hwl,
        PersistMode::Fwb,
    };

    for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
        for (const auto &wl : workloads::microbenchNames()) {
            Cell base = unsafeBase(wl, threads);
            std::printf("%-9s-%ut", wl.c_str(), threads);
            for (PersistMode m : modes) {
                Cell c = runCell(wl, m, threads);
                std::printf(" %10.2f",
                            base.memDynEnergy() / c.memDynEnergy());
            }
            std::printf("\n");
            std::fflush(stdout);
        }
        if (threads == 1) {
            std::printf("%-12s", "(modes)");
            for (PersistMode m : modes)
                std::printf(" %10s", persistModeName(m));
            std::printf("\n");
        }
    }

    std::printf("\nExpected shape (paper): clwb-based sw logging "
                "imposes up to 62%% memory energy overhead vs\n"
                "non-pers; fwb recovers most of it (~20%% dynamic "
                "memory energy overhead).\n");
    return 0;
}
