/**
 * @file
 * Table I: summary of the major hardware overhead of the design,
 * computed from the active system configuration (registers, the
 * optional log buffer SRAM, and the per-line fwb tag bits).
 */

#include "bench/common.hh"
#include "persist/log_record.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::bench;

int
main()
{
    setQuiet(true);
    std::printf("== Table I: hardware overhead summary ==\n\n");

    for (const char *preset : {"paper", "scaled"}) {
        SystemConfig c = std::string(preset) == "paper"
                             ? SystemConfig::paper()
                             : SystemConfig::scaled();
        std::uint64_t l1_lines =
            static_cast<std::uint64_t>(c.numCores) * c.l1.numLines();
        std::uint64_t l2_lines = c.l2.numLines();
        // One log record plus valid/coalescing tags per entry,
        // rounded to a 64-byte SRAM word as in the paper's 964-byte
        // estimate for its configuration.
        std::uint64_t log_buffer_bytes =
            c.persist.logBufferEntries * 64ULL + 4;
        std::uint64_t fwb_bits = l1_lines + l2_lines;

        std::printf("--- %s configuration ---\n", preset);
        std::printf("%-28s %-10s %8s\n", "Mechanism", "Logic",
                    "Size");
        std::printf("%-28s %-10s %7uB\n", "Transaction ID register",
                    "flip-flops", 1);
        std::printf("%-28s %-10s %7uB\n", "Log head pointer register",
                    "flip-flops", 8);
        std::printf("%-28s %-10s %7uB\n", "Log tail pointer register",
                    "flip-flops", 8);
        std::printf("%-28s %-10s %7lluB  (%u entries x 64B)\n",
                    "Log buffer (optional)", "SRAM",
                    static_cast<unsigned long long>(log_buffer_bytes),
                    c.persist.logBufferEntries);
        std::printf("%-28s %-10s %7lluB  (%llu lines x 1 bit)\n",
                    "Fwb tag bit", "SRAM",
                    static_cast<unsigned long long>(fwb_bits / 8),
                    static_cast<unsigned long long>(fwb_bits));
        std::printf("\n");
    }

    std::printf("(paper Table I reports 1B + 8B + 8B + 964B + 768B "
                "for its cache configuration;\n"
                " the fwb-bit figure depends directly on the total "
                "line count of all caches.)\n");
    return 0;
}
