/**
 * @file
 * google-benchmark microbenchmarks of the simulator tick machinery
 * after the hot-path overhaul: the calendar event queue (near-future
 * bucket ring, far-future overflow heap, same-tick FIFO merge,
 * reschedule-from-callback), the small-buffer callback (inline vs
 * heap-spilled captures), queue clear/reuse between runs, the
 * idle-tick skip probe, and the cache tag-array lookup fast path.
 *
 * Deterministic counters (allocations per scheduled event, heap
 * spills) are exported as benchmark counters so the perf-smoke lane
 * can gate on them without trusting wall-clock.
 */

#include <benchmark/benchmark.h>

#include <cstdint>

#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/small_callback.hh"

using namespace snf;

namespace
{

/// Near-future scheduling: every event lands in the bucket ring.
void
BM_CalendarRing(benchmark::State &state)
{
    sim::EventQueue q;
    Tick now = 0;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.schedule(now + 1 + (i * 7) % 32,
                       [&fired](Tick) { ++fired; });
        now += 32;
        q.runUntil(now);
    }
    benchmark::DoNotOptimize(fired);
    state.counters["alloc_per_event"] = benchmark::Counter(
        static_cast<double>(q.statCallbackHeapAllocs()) /
        static_cast<double>(q.statScheduled() ? q.statScheduled() : 1));
    state.counters["heap_spill_frac"] = benchmark::Counter(
        static_cast<double>(q.statHeapSpills()) /
        static_cast<double>(q.statScheduled() ? q.statScheduled() : 1));
}
BENCHMARK(BM_CalendarRing);

/// Far-future scheduling: every event overflows to the heap, then
/// drains through the merged (tick, seq) pop path.
void
BM_CalendarHeapSpill(benchmark::State &state)
{
    sim::EventQueue q;
    Tick now = 0;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.schedule(now + 2048 + (i * 131) % 512,
                       [&fired](Tick) { ++fired; });
        now += 4096;
        q.runUntil(now);
    }
    benchmark::DoNotOptimize(fired);
    state.counters["heap_spill_frac"] = benchmark::Counter(
        static_cast<double>(q.statHeapSpills()) /
        static_cast<double>(q.statScheduled() ? q.statScheduled() : 1));
}
BENCHMARK(BM_CalendarHeapSpill);

/// Many events on one tick: exercises the per-bucket FIFO drain.
void
BM_CalendarSameTickFifo(benchmark::State &state)
{
    sim::EventQueue q;
    Tick now = 0;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            q.schedule(now + 1, [&fired](Tick) { ++fired; });
        now += 1;
        q.runUntil(now);
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_CalendarSameTickFifo);

/// A periodic self-rescheduling event (the LogScrubber/FwbEngine
/// pattern): each callback schedules its successor from inside the
/// drain loop.
void
BM_CalendarReschedule(benchmark::State &state)
{
    sim::EventQueue q;
    Tick now = 0;
    std::uint64_t fired = 0;
    struct Periodic
    {
        sim::EventQueue &q;
        std::uint64_t &fired;
        void
        operator()(Tick t) const
        {
            ++fired;
            q.schedule(t + 3, Periodic{q, fired});
        }
    };
    q.schedule(1, Periodic{q, fired});
    for (auto _ : state) {
        now += 512;
        q.runUntil(now);
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_CalendarReschedule);

/// Inline-capture callback: construct + invoke, no heap traffic.
void
BM_SmallCallbackInline(benchmark::State &state)
{
    std::uint64_t acc = 0;
    for (auto _ : state) {
        sim::SmallCallback cb([&acc](Tick t) { acc += t; });
        benchmark::DoNotOptimize(cb.onHeap()); // false: 8-byte capture
        cb(7);
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SmallCallbackInline);

/// Oversized capture: spills to the heap (the slow path the queue's
/// allocations-per-event counter tracks).
void
BM_SmallCallbackHeapSpill(benchmark::State &state)
{
    std::uint64_t acc = 0;
    struct Big
    {
        std::uint64_t pad[16];
    };
    Big big{};
    for (auto _ : state) {
        sim::SmallCallback cb(
            [&acc, big](Tick t) { acc += t + big.pad[0]; });
        benchmark::DoNotOptimize(cb.onHeap()); // true: 136-byte capture
        cb(7);
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SmallCallbackHeapSpill);

/// clear() between runs: O(pending) teardown with capacity retained,
/// the harness reuse pattern (one queue, many simulations).
void
BM_QueueClearReuse(benchmark::State &state)
{
    sim::EventQueue q;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 128; ++i)
            q.schedule(1 + (i % 64), [&fired](Tick) { ++fired; });
        q.clear();
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_QueueClearReuse);

/// The scheduler's idle-skip probe: nextEventTick() on a queue with a
/// single far-future event must be O(1), not a scan.
void
BM_NextEventTickProbe(benchmark::State &state)
{
    sim::EventQueue q;
    q.schedule(1u << 20, [](Tick) {});
    Tick acc = 0;
    for (auto _ : state)
        acc ^= q.nextEventTick();
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NextEventTickProbe);

/// Cache lookup fast path: the tag-array probe on a hot working set.
void
BM_CacheTagProbe(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    mem::Cache cache("bench_l1", cfg);
    sim::Rng rng(7);
    for (int i = 0; i < 256; ++i) {
        Addr line = rng.below(512) * 64;
        mem::CacheLine *slot = cache.victimFor(line);
        if (slot->valid)
            cache.invalidate(slot);
        cache.install(slot, line);
    }
    std::uint64_t hits = 0;
    sim::Rng probe(11);
    for (auto _ : state) {
        if (cache.find(probe.below(512) * 64) != nullptr)
            ++hits;
    }
    benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_CacheTagProbe);

} // namespace

BENCHMARK_MAIN();
