/**
 * @file
 * Figure 9: NVRAM write-traffic reduction (higher is better),
 * normalized to unsafe-base, for the five microbenchmarks.
 */

#include "bench/common.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::bench;

int
main()
{
    setQuiet(true);
    std::printf("== Figure 9: memory write traffic reduction "
                "(unsafe-base bytes / mode bytes) ==\n");
    printTableII();

    const PersistMode modes[] = {
        PersistMode::NonPers,  PersistMode::RedoClwb,
        PersistMode::UndoClwb, PersistMode::HwRlog,
        PersistMode::HwUlog,   PersistMode::Hwl,
        PersistMode::Fwb,
    };

    std::printf("%-12s", "benchmark");
    for (PersistMode m : modes)
        std::printf(" %10s", persistModeName(m));
    std::printf("\n");

    for (std::uint32_t threads : {1u, 8u}) {
        for (const auto &wl : workloads::microbenchNames()) {
            Cell base = unsafeBase(wl, threads);
            std::printf("%-9s-%ut", wl.c_str(), threads);
            for (PersistMode m : modes) {
                Cell c = runCell(wl, m, threads);
                double denom = c.nvramWriteBytes();
                std::printf(" %10.2f",
                            denom > 0
                                ? base.nvramWriteBytes() / denom
                                : 0.0);
            }
            std::printf("\n");
            std::fflush(stdout);
        }
    }

    std::printf("\nExpected shape (paper): fwb substantially reduces "
                "NVRAM writes vs clwb-based sw logging\n"
                "(cache-coalesced FWB write-backs replace per-commit "
                "forced write-backs).\n");
    return 0;
}
