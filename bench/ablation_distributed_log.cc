/**
 * @file
 * Ablation (paper Section III-F, "Types of Logging"): centralized vs
 * distributed per-thread logs under the full design (fwb), across
 * thread counts, on workloads with thread-private persistent data.
 * Distributed logs remove the single log-tail serialization point;
 * the benefit grows with thread count and write intensity.
 */

#include "bench/common.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::bench;

namespace
{

workloads::RunOutcome
run(const std::string &wl, std::uint32_t threads, bool distributed)
{
    workloads::RunSpec spec;
    spec.workload = wl;
    spec.mode = PersistMode::Fwb;
    spec.params.threads = threads;
    spec.params.txPerThread = static_cast<std::uint64_t>(
        500 * benchScale());
    if (spec.params.txPerThread == 0)
        spec.params.txPerThread = 1;
    spec.params.footprint = 65536;
    spec.sys = benchConfig(threads);
    spec.sys.persist.distributedLogs = distributed;
    spec.verifyAtEnd = false;
    return workloads::runWorkload(spec);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Ablation: centralized vs distributed per-thread "
                "logs (fwb) ==\n");
    printTableII();

    std::printf("%-8s %8s %14s %14s %8s %10s %10s\n", "workload",
                "threads", "central tx/Mc", "distrib tx/Mc",
                "speedup", "c-stalls", "d-stalls");
    for (const auto &wl : {"sps", "hash", "echo", "tpcc"}) {
        for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
            auto c = run(wl, threads, false);
            auto d = run(wl, threads, true);
            std::printf("%-8s %8u %14.1f %14.1f %7.2fx %10llu "
                        "%10llu\n",
                        wl, threads, c.stats.txPerMcycle,
                        d.stats.txPerMcycle,
                        d.stats.txPerMcycle / c.stats.txPerMcycle,
                        static_cast<unsigned long long>(
                            c.stats.logBufferStalls),
                        static_cast<unsigned long long>(
                            d.stats.logBufferStalls));
            std::fflush(stdout);
        }
    }

    std::printf("\nExpected: log-buffer stalls collapse (per-thread "
                "FIFOs drain in parallel), helping\n"
                "most where the centralized tail saturates (8-thread "
                "echo/sps). The counterweight is\n"
                "that each partition is smaller, so the FWB scan "
                "period shortens (more scan overhead) -\n"
                "visible as a small net loss on tpcc. At one thread "
                "the two are identical.\n"
                "Constraint: requires thread-private persistent data "
                "(see PersistConfig::distributedLogs).\n");
    return 0;
}
