/**
 * @file
 * NVRAM lifetime analysis (paper Section III-F): write amplification
 * of logging vs the write coalescing the caches provide, per-row
 * wear, and the projected time-to-wear-out of the hottest cell at
 * the observed write rate — the paper's argument that conventional
 * wear-leveling has ample time to engage.
 */

#include "bench/common.hh"
#include "core/system.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::bench;

namespace
{

void
report(const char *label, PersistMode mode)
{
    workloads::RunSpec spec;
    spec.workload = "sps";
    spec.mode = mode;
    spec.params.threads = 4;
    spec.params.txPerThread = static_cast<std::uint64_t>(
        2000 * benchScale());
    if (spec.params.txPerThread == 0)
        spec.params.txPerThread = 1;
    spec.params.footprint = 65536;
    spec.sys = benchConfig(4);

    // Run by hand so the device wear counters are reachable.
    System sys(spec.sys, mode);
    auto wl = workloads::makeWorkload(spec.workload);
    wl->setup(sys, spec.params);
    for (CoreId c = 0; c < spec.params.threads; ++c) {
        sys.spawn(c, [&](Thread &t) {
            return wl->thread(sys, t, spec.params);
        });
    }
    Tick end = sys.run();

    auto wear = sys.mem().nvram().wearReport();
    double days = wear.hottestRowLifetimeSeconds(
                      100000000 /* 1e8 endurance */, end,
                      spec.sys.clockGhz) /
                  86400.0;
    std::printf("%-10s writes=%-8llu rows=%-6llu hottest=%-6llu "
                "mean=%-8.1f lifetime=%.1e days\n",
                label,
                static_cast<unsigned long long>(wear.totalWrites),
                static_cast<unsigned long long>(wear.rowsTouched),
                static_cast<unsigned long long>(
                    wear.hottestRowWrites),
                wear.meanWritesPerTouchedRow, days);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== NVRAM lifetime report (Section III-F): sps, 4 "
                "threads ==\n");
    printTableII();
    std::printf("(lifetime = hottest row at observed rate, 1e8 "
                "endurance, no wear leveling)\n\n");

    report("non-pers", PersistMode::NonPers);
    report("undo-clwb", PersistMode::UndoClwb);
    report("hwl", PersistMode::Hwl);
    report("fwb", PersistMode::Fwb);

    std::printf("\nReading the numbers: 'lifetime' is the hottest "
                "row's time-to-wear-out at the run's\n"
                "own (saturated, scaled-down-log) write rate, so "
                "faster modes show shorter horizons\n"
                "and small logs concentrate wear. It scales linearly "
                "with log size: the paper's 4MB\n"
                "log at a realistic duty cycle gives the ~15-day "
                "floor of Section III-F, ample for\n"
                "Start-Gap-style wear leveling [38-40] to engage. "
                "The shape to check: fwb's hottest\n"
                "row takes ~half the writes of clwb-based logging "
                "(cache coalescing), with fewer\n"
                "total writes than either software scheme.\n");
    return 0;
}
