/**
 * @file
 * Figure 11(b): the cache force-write-back frequency required for
 * persistence as a function of the NVRAM log size (Section IV-D).
 * For each log size we report the derived scan period (from log size
 * and NVRAM write bandwidth) and empirically confirm that running
 * the write-intensive hash benchmark at that period produces zero
 * log-overwrite hazards, while a grossly excessive period does not.
 */

#include "bench/common.hh"
#include "persist/fwb_engine.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::bench;

namespace
{

std::uint64_t
hazardsAt(std::uint64_t logBytes, Tick period)
{
    workloads::RunSpec spec;
    spec.workload = "hash";
    spec.mode = PersistMode::Fwb;
    spec.params.threads = 4;
    spec.params.txPerThread = static_cast<std::uint64_t>(
        800 * benchScale());
    if (spec.params.txPerThread == 0)
        spec.params.txPerThread = 1;
    spec.params.footprint = 65536;
    spec.sys = benchConfig(4);
    spec.sys.persist.logBytes = logBytes;
    spec.sys.map.logSize = logBytes;
    spec.sys.persist.fwbPeriod = period;
    spec.verifyAtEnd = false;
    auto o = workloads::runWorkload(spec);
    return o.stats.overwriteHazards;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Figure 11(b): required FWB period vs log size "
                "==\n");
    printTableII();

    std::printf("%10s %16s %16s %18s\n", "log size", "derived period",
                "hazards@derived", "hazards@100x period");
    for (std::uint64_t kb : {64ULL, 128ULL, 256ULL, 512ULL, 1024ULL,
                             2048ULL, 4096ULL}) {
        SystemConfig cfg = benchConfig(4);
        cfg.persist.logBytes = kb * 1024;
        cfg.map.logSize = kb * 1024;
        Tick period = persist::FwbEngine::derivePeriod(cfg);
        std::uint64_t at_derived = hazardsAt(kb * 1024, 0);
        std::uint64_t at_slow = hazardsAt(kb * 1024, period * 100);
        std::printf("%8lluKB %13llu cy %16llu %18llu\n",
                    static_cast<unsigned long long>(kb),
                    static_cast<unsigned long long>(period),
                    static_cast<unsigned long long>(at_derived),
                    static_cast<unsigned long long>(at_slow));
        std::fflush(stdout);
    }

    std::printf("\nExpected shape (paper): the required period grows "
                "linearly with log size\n"
                "(paper: force write-backs every ~3M cycles suffice "
                "for a 4MB log); the derived\n"
                "period keeps hazards at zero, while scanning far "
                "too slowly risks overwriting\n"
                "live entries under write-intensive load.\n");
    return 0;
}
