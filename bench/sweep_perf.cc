/**
 * @file
 * google-benchmark harness for the snapshot engine behind the crash
 * sweeps: naive full-replay vs. checkpointed snapshotAt over a
 * journaled store (the benchmark argument is the checkpoint interval,
 * 0 = naive), repeated snapshotAt vs. the monotone Cursor along an
 * ascending tick walk, and a small end-to-end runCrashSweep cell at
 * both settings. CI runs this with --benchmark_min_time=0.05s as the
 * bench-smoke job; locally, plain `sweep_perf` gives stable numbers.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "crashlab/sweep.hh"
#include "mem/backing_store.hh"
#include "sim/rng.hh"

using namespace snf;

namespace
{

constexpr Addr kBase = 0x100000;
constexpr std::uint64_t kSize = 8 << 20;
constexpr std::uint64_t kJournalEntries = 50000;

/**
 * A journaled store with a synthetic but realistically shaped write
 * stream: mostly small (<= 32 B, inline) writes over a working set
 * far smaller than the range, completion ticks mildly out of issue
 * order. Built once per checkpoint interval and shared across
 * iterations (snapshotAt is const).
 */
const mem::BackingStore &
journaledStore(std::size_t ckptInterval)
{
    static std::vector<
        std::pair<std::size_t, std::unique_ptr<mem::BackingStore>>>
        cache;
    for (const auto &e : cache)
        if (e.first == ckptInterval)
            return *e.second;

    auto bs = std::make_unique<mem::BackingStore>(kBase, kSize);
    bs->setCheckpointInterval(ckptInterval);
    bs->enableJournal();
    sim::Rng rng(1234);
    Tick now = 0;
    for (std::uint64_t i = 0; i < kJournalEntries; ++i) {
        now += rng.below(5);
        std::uint8_t buf[64];
        std::uint64_t len = rng.chance(0.9) ? 8 + 8 * rng.below(4)
                                            : 33 + rng.below(32);
        for (std::uint64_t b = 0; b < len; ++b)
            buf[b] = static_cast<std::uint8_t>(rng.next());
        Addr a = kBase + rng.below((1 << 20) - sizeof(buf));
        bs->write(a, len, buf, now + rng.below(3));
    }
    bs->buildSnapshotIndex();
    cache.emplace_back(ckptInterval, std::move(bs));
    return *cache.back().second;
}

/** Upper bound on the synthetic stream's completion ticks (they
 *  advance by < 5 per entry plus a completion jitter of < 3). */
constexpr Tick kLastTick = kJournalEntries * 5 + 3;

/** snapshotAt at scattered ticks; arg = checkpoint interval. */
void
BM_SnapshotAt(benchmark::State &state)
{
    const mem::BackingStore &bs =
        journaledStore(static_cast<std::size_t>(state.range(0)));
    sim::Rng rng(7);
    for (auto _ : state) {
        mem::BackingStore snap = bs.snapshotAt(rng.below(kLastTick + 1));
        benchmark::DoNotOptimize(snap.read64(kBase));
    }
    state.counters["checkpoints"] =
        static_cast<double>(bs.checkpointCount());
}
BENCHMARK(BM_SnapshotAt)->Arg(0)->Arg(256)->Arg(1024)->Arg(4096);

/**
 * An ascending 64-point walk — the access pattern of a crash sweep —
 * via independent snapshotAt calls; arg = checkpoint interval.
 */
void
BM_AscendingWalk_SnapshotAt(benchmark::State &state)
{
    const mem::BackingStore &bs =
        journaledStore(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        std::uint64_t acc = 0;
        for (Tick t = 0; t <= kLastTick; t += kLastTick / 64)
            acc ^= bs.snapshotAt(t).read64(kBase);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_AscendingWalk_SnapshotAt)->Arg(0)->Arg(1024);

/** The same walk through the monotone Cursor (one replay total). */
void
BM_AscendingWalk_Cursor(benchmark::State &state)
{
    const mem::BackingStore &bs =
        journaledStore(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        mem::BackingStore::Cursor cursor(bs);
        std::uint64_t acc = 0;
        for (Tick t = 0; t <= kLastTick; t += kLastTick / 64)
            acc ^= cursor.imageAt(t).read64(kBase);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_AscendingWalk_Cursor)->Arg(0)->Arg(1024);

/**
 * End-to-end crash sweep of a small sps/fwb cell; arg = checkpoint
 * interval (0 = the pre-overhaul naive replay). Dominated by the
 * recovery + checker passes, so this is the number that tracks the
 * user-visible snfcrash speedup.
 */
void
BM_CrashSweepEndToEnd(benchmark::State &state)
{
    for (auto _ : state) {
        crashlab::SweepConfig cfg;
        cfg.run.workload = "sps";
        cfg.run.mode = PersistMode::Fwb;
        cfg.run.params.threads = 2;
        cfg.run.params.txPerThread = 30;
        cfg.run.params.seed = 1;
        cfg.run.sys = SystemConfig::scaled(2);
        cfg.run.sys.persist.snapshotCheckpointK =
            static_cast<std::size_t>(state.range(0));
        cfg.jobs = 1;
        cfg.maxPoints = 100;
        crashlab::SweepResult res = crashlab::runCrashSweep(cfg);
        benchmark::DoNotOptimize(res.pointsTested);
        state.counters["points"] =
            static_cast<double>(res.pointsTested);
        state.counters["replayed"] =
            static_cast<double>(res.perf.entriesReplayed);
    }
}
BENCHMARK(BM_CrashSweepEndToEnd)
    ->Arg(0)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
