/**
 * @file
 * Figure 6: transaction throughput of each persistence scheme,
 * normalized to unsafe-base (the better of software redo/undo logging
 * without forced write-backs), for the five microbenchmarks at 1, 2,
 * 4, and 8 threads.
 */

#include "bench/common.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::bench;

int
main()
{
    setQuiet(true);
    std::printf("== Figure 6: transaction throughput speedup "
                "(normalized to unsafe-base) ==\n");
    printTableII();

    const PersistMode modes[] = {
        PersistMode::NonPers,  PersistMode::RedoClwb,
        PersistMode::UndoClwb, PersistMode::HwRlog,
        PersistMode::HwUlog,   PersistMode::Hwl,
        PersistMode::Fwb,
    };

    std::printf("%-12s", "benchmark");
    for (PersistMode m : modes)
        std::printf(" %10s", persistModeName(m));
    std::printf("\n");

    for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
        for (const auto &wl : workloads::microbenchNames()) {
            Cell base = unsafeBase(wl, threads);
            std::printf("%-9s-%ut", wl.c_str(), threads);
            for (PersistMode m : modes) {
                Cell c = runCell(wl, m, threads);
                std::printf(" %10.2f",
                            c.throughput() / base.throughput());
            }
            std::printf("\n");
            std::fflush(stdout);
        }
    }

    std::printf("\nExpected shape (paper): redo/undo-clwb < 1, "
                "hwl > 1, fwb highest persistent mode\n");
    std::printf("(paper: fwb ~1.86x best sw logging at 1 thread, "
                "~1.75x at 8 threads)\n");
    return 0;
}
