/**
 * @file
 * Ablation: the inherent log-before-data ordering guarantee
 * (Section III-B) depends on the memory controller issuing log-buffer
 * entries to the NVRAM bus ahead of data write-backs. This ablation
 * removes that FIFO ordering and measures how many ordering
 * violations (a data line reaching NVRAM before its log record)
 * appear, and what the ordering costs in throughput.
 */

#include "bench/common.hh"
#include "sim/logging.hh"

using namespace snf;
using namespace snf::bench;

namespace
{

workloads::RunOutcome
run(PersistMode mode, bool barrier, std::uint32_t logEntries)
{
    workloads::RunSpec spec;
    spec.workload = "hash";
    spec.mode = mode;
    spec.params.threads = 4;
    spec.params.txPerThread = static_cast<std::uint64_t>(
        600 * benchScale());
    if (spec.params.txPerThread == 0)
        spec.params.txPerThread = 1;
    spec.params.footprint = 65536;
    spec.sys = benchConfig(4);
    spec.sys.persist.disableWbBarrier = !barrier;
    spec.sys.persist.logBufferEntries = logEntries;
    spec.verifyAtEnd = false;
    return workloads::runWorkload(spec);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("== Ablation: MC FIFO ordering of log writes vs "
                "data write-backs (hash, 4 threads) ==\n");
    printTableII();

    std::printf("%-6s %8s %10s %12s %14s\n", "mode", "barrier",
                "logbuf", "tx/Mcycle", "order-violations");
    for (PersistMode m : {PersistMode::Hwl, PersistMode::Fwb}) {
        for (std::uint32_t entries : {15u, 64u, 256u}) {
            for (bool barrier : {true, false}) {
                auto o = run(m, barrier, entries);
                std::printf("%-6s %8s %10u %12.2f %14llu\n",
                            persistModeName(m),
                            barrier ? "on" : "off", entries,
                            o.stats.txPerMcycle,
                            static_cast<unsigned long long>(
                                o.stats.orderViolations));
                std::fflush(stdout);
            }
        }
    }

    std::printf("\nExpected: with the barrier on, violations are "
                "zero at every buffer size; with it off,\n"
                "violations appear (and grow with the buffer, whose "
                "drain lags further behind commits),\n"
                "at only a small throughput difference — ordering at "
                "the MC is nearly free, which is\n"
                "the paper's core argument for hardware logging.\n");
    return 0;
}
