/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the
 * paper's tables and figures: cell runners, normalization against the
 * unsafe-base baseline, and table printers.
 *
 * Every bench honours SNF_BENCH_SCALE (default 1.0): transaction
 * counts are multiplied by it, so `SNF_BENCH_SCALE=0.1 fig6_...`
 * gives a fast approximate run and larger values tighten the numbers.
 */

#ifndef SNF_BENCH_COMMON_HH
#define SNF_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "workloads/driver.hh"

namespace snf::bench
{

inline double
benchScale()
{
    const char *s = std::getenv("SNF_BENCH_SCALE");
    if (!s)
        return 1.0;
    double v = std::atof(s);
    return v > 0 ? v : 1.0;
}

/** Benchmark-grade system config: paper latencies, scaled caches. */
inline SystemConfig
benchConfig(std::uint32_t threads)
{
    // The scaled preset keeps the paper's latency/bandwidth numbers
    // and shrinks caches and log 16x, so the bench footprints below
    // exceed the LLC as the paper's 256 MB-1 GB footprints exceed
    // its 8 MB LLC.
    return SystemConfig::scaled(threads);
}

struct Cell
{
    workloads::RunOutcome outcome;

    double throughput() const { return outcome.stats.txPerMcycle; }

    double ipc() const { return outcome.stats.ipc; }

    double instructions() const
    {
        return static_cast<double>(outcome.stats.instr.total);
    }

    double
    nvramWriteBytes() const
    {
        return static_cast<double>(outcome.stats.nvramWriteBytes);
    }

    double
    memDynEnergy() const
    {
        return outcome.stats.energy.memoryDynamicPj();
    }
};

/** Run one (workload, mode, threads) cell with bench-sized inputs. */
inline Cell
runCell(const std::string &workload, PersistMode mode,
        std::uint32_t threads, bool stringValues = false,
        std::uint64_t txPerThreadBase = 400,
        std::uint64_t footprint = 131072)
{
    workloads::RunSpec spec;
    spec.workload = workload;
    spec.mode = mode;
    spec.params.threads = threads;
    spec.params.txPerThread = static_cast<std::uint64_t>(
        static_cast<double>(txPerThreadBase) * benchScale());
    if (spec.params.txPerThread == 0)
        spec.params.txPerThread = 1;
    spec.params.footprint = footprint;
    spec.params.stringValues = stringValues;
    spec.sys = benchConfig(threads);
    spec.verifyAtEnd = false; // timing cells; correctness is tested
    Cell c;
    c.outcome = workloads::runWorkload(spec);
    return c;
}

/**
 * The unsafe-base baseline of the paper's figures: the better of
 * redo and undo software logging without forced write-backs.
 */
inline Cell
unsafeBase(const std::string &workload, std::uint32_t threads,
           bool stringValues = false,
           std::uint64_t txPerThreadBase = 400,
           std::uint64_t footprint = 131072)
{
    Cell redo = runCell(workload, PersistMode::UnsafeRedo, threads,
                        stringValues, txPerThreadBase, footprint);
    Cell undo = runCell(workload, PersistMode::UnsafeUndo, threads,
                        stringValues, txPerThreadBase, footprint);
    return redo.throughput() >= undo.throughput() ? redo : undo;
}

inline void
printTableII()
{
    std::printf("# Configuration (paper Table II, scaled preset):\n");
    SystemConfig c = benchConfig(4);
    std::printf("#   cores=%u @%.1fGHz, L1 %uKB/%uw, L2 %uKB/%uw, "
                "line %uB\n",
                c.numCores, c.clockGhz, c.l1.sizeBytes / 1024,
                c.l1.ways, c.l2.sizeBytes / 1024, c.l2.ways,
                c.l1.lineBytes);
    std::printf("#   NVRAM: row-hit %u cyc, read/write conflict "
                "%u/%u cyc, %u banks\n",
                c.nvram.rowHitLat, c.nvram.readConflictLat,
                c.nvram.writeConflictLat, c.nvram.banks);
    std::printf("#   log %lluKB, log buffer %u entries, WCB %u\n",
                static_cast<unsigned long long>(
                    c.persist.logBytes / 1024),
                c.persist.logBufferEntries, c.persist.wcbEntries);
    std::printf("#   SNF_BENCH_SCALE=%.2f\n\n", benchScale());
}

} // namespace snf::bench

#endif // SNF_BENCH_COMMON_HH
